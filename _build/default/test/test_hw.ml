open Resoc_hw
module Rng = Resoc_des.Rng

(* --- Ecc --- *)

let test_ecc_roundtrip_basic () =
  List.iter
    (fun v ->
      let data, status = Ecc.decode (Ecc.encode v) in
      Alcotest.(check int64) "data" v data;
      Alcotest.(check bool) "clean" true (status = Ecc.Clean))
    [ 0L; 1L; Int64.max_int; Int64.min_int; -1L; 0xDEADBEEFCAFEBABEL ]

let test_ecc_single_flip_all_positions () =
  let v = 0x0123456789ABCDEFL in
  for bit = 0 to Ecc.width - 1 do
    let w = Ecc.flip (Ecc.encode v) bit in
    let data, status = Ecc.decode w in
    Alcotest.(check int64) (Printf.sprintf "bit %d corrected" bit) v data;
    Alcotest.(check bool) (Printf.sprintf "bit %d status" bit) true (status = Ecc.Corrected)
  done

let test_ecc_double_flip_detected () =
  let v = 0xFEEDFACE12345678L in
  (* All pairs is 72*71/2 = 2556 cases; affordable. *)
  for i = 0 to Ecc.width - 1 do
    for j = i + 1 to Ecc.width - 1 do
      let w = Ecc.flip (Ecc.flip (Ecc.encode v) i) j in
      let _, status = Ecc.decode w in
      if status <> Ecc.Uncorrectable then
        Alcotest.failf "double flip (%d,%d) not detected" i j
    done
  done

let test_ecc_flip_bounds () =
  Alcotest.check_raises "flip oob" (Invalid_argument "Ecc.flip: bit out of range") (fun () ->
      ignore (Ecc.flip (Ecc.encode 0L) 72))

let test_ecc_flip_involutive () =
  let w = Ecc.encode 42L in
  Alcotest.(check bool) "double flip restores" true (Ecc.equal w (Ecc.flip (Ecc.flip w 17) 17))

let prop_ecc_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500 QCheck.int64 (fun v ->
      let data, status = Ecc.decode (Ecc.encode v) in
      Int64.equal data v && status = Ecc.Clean)

let prop_ecc_corrects_any_single_flip =
  QCheck.Test.make ~name:"single flip corrected" ~count:500
    QCheck.(pair int64 (int_bound (Ecc.width - 1)))
    (fun (v, bit) ->
      let data, status = Ecc.decode (Ecc.flip (Ecc.encode v) bit) in
      Int64.equal data v && status = Ecc.Corrected)

(* --- Register --- *)

let test_register_write_read () =
  List.iter
    (fun p ->
      let r = Register.create p 99L in
      Register.write r 1234L;
      let v, status = Register.read r in
      Alcotest.(check int64) "value" 1234L v;
      Alcotest.(check bool) "ok" true (status = Register.Ok))
    [ Register.Plain; Register.Parity; Register.Secded ]

let test_register_plain_silent () =
  let r = Register.create Register.Plain 0L in
  Register.inject_upset_at r 5;
  let v, status = Register.read r in
  Alcotest.(check int64) "silently wrong" 32L v;
  Alcotest.(check bool) "no detection" true (status = Register.Ok);
  Alcotest.(check bool) "oracle sees corruption" true (Register.silently_corrupt r)

let test_register_parity_detects_single () =
  let r = Register.create Register.Parity 0L in
  Register.inject_upset_at r 3;
  let _, status = Register.read r in
  Alcotest.(check bool) "detected" true (status = Register.Fault_detected);
  Alcotest.(check bool) "not silent" false (Register.silently_corrupt r)

let test_register_parity_misses_double () =
  let r = Register.create Register.Parity 0L in
  Register.inject_upset_at r 3;
  Register.inject_upset_at r 7;
  let _, status = Register.read r in
  Alcotest.(check bool) "double flip evades parity" true (status = Register.Ok);
  Alcotest.(check bool) "silent corruption" true (Register.silently_corrupt r)

let test_register_secded_corrects () =
  let r = Register.create Register.Secded 77L in
  Register.inject_upset_at r 13;
  let v, status = Register.read r in
  Alcotest.(check int64) "corrected value" 77L v;
  Alcotest.(check bool) "corrected status" true (status = Register.Corrected);
  (* scrubbed: a second read is clean *)
  let _, status2 = Register.read r in
  Alcotest.(check bool) "scrubbed" true (status2 = Register.Ok)

let test_register_secded_detects_double () =
  let r = Register.create Register.Secded 77L in
  Register.inject_upset_at r 13;
  Register.inject_upset_at r 40;
  let _, status = Register.read r in
  Alcotest.(check bool) "double detected" true (status = Register.Fault_detected)

let test_register_stored_bits () =
  Alcotest.(check int) "plain" 64 (Register.stored_bits (Register.create Register.Plain 0L));
  Alcotest.(check int) "parity" 65 (Register.stored_bits (Register.create Register.Parity 0L));
  Alcotest.(check int) "secded" 72 (Register.stored_bits (Register.create Register.Secded 0L))

let test_register_gate_cost_monotone () =
  Alcotest.(check bool) "plain < parity < secded" true
    (Register.gate_cost Register.Plain < Register.gate_cost Register.Parity
     && Register.gate_cost Register.Parity < Register.gate_cost Register.Secded)

let test_register_upset_counter () =
  let r = Register.create Register.Secded 0L in
  let rng = Rng.create 4L in
  Register.inject_upset r rng;
  Register.inject_upset r rng;
  Alcotest.(check int) "counted" 2 (Register.upsets_injected r)

(* --- Circuit --- *)

let test_majority3_truth_table () =
  for a = 0 to 1 do
    for b = 0 to 1 do
      for c = 0 to 1 do
        let inputs = [| a = 1; b = 1; c = 1 |] in
        let expected = a + b + c >= 2 in
        let out = Circuit.eval Circuit.majority3 inputs in
        Alcotest.(check bool) (Printf.sprintf "maj(%d,%d,%d)" a b c) expected out.(0)
      done
    done
  done

let test_majority5_exhaustive () =
  let m5 = Circuit.majority 5 in
  for pattern = 0 to 31 do
    let inputs = Array.init 5 (fun i -> (pattern lsr i) land 1 = 1) in
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inputs in
    let out = Circuit.eval m5 inputs in
    Alcotest.(check bool) (Printf.sprintf "maj5 pattern %d" pattern) (ones >= 3) out.(0)
  done

let test_majority7_exhaustive () =
  let m7 = Circuit.majority 7 in
  for pattern = 0 to 127 do
    let inputs = Array.init 7 (fun i -> (pattern lsr i) land 1 = 1) in
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inputs in
    let out = Circuit.eval m7 inputs in
    Alcotest.(check bool) (Printf.sprintf "maj7 pattern %d" pattern) (ones >= 4) out.(0)
  done

let test_majority_rejects_even () =
  Alcotest.check_raises "even n" (Invalid_argument "Circuit.majority: n must be odd and positive")
    (fun () -> ignore (Circuit.majority 4))

let test_xor_tree () =
  let x4 = Circuit.xor_tree 4 in
  for pattern = 0 to 15 do
    let inputs = Array.init 4 (fun i -> (pattern lsr i) land 1 = 1) in
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inputs in
    let out = Circuit.eval x4 inputs in
    Alcotest.(check bool) (Printf.sprintf "xor pattern %d" pattern) (ones mod 2 = 1) out.(0)
  done

let test_circuit_validation () =
  Alcotest.check_raises "forward reference"
    (Invalid_argument "Circuit.build: operand must reference an earlier gate") (fun () ->
      ignore (Circuit.build ~n_inputs:1 [| Circuit.Not 1; Circuit.Input 0 |] ~outputs:[| 0 |]))

let test_circuit_no_faults_at_p0 () =
  let rng = Rng.create 5L in
  let c = Circuit.random_logic rng ~n_inputs:4 ~n_gates:50 in
  let inputs = [| true; false; true; true |] in
  Alcotest.(check (array bool)) "p=0 equals golden" (Circuit.eval c inputs)
    (Circuit.eval_faulty c rng ~p_gate:0.0 inputs)

let test_circuit_gate_count () =
  Alcotest.(check int) "majority3 gates" 5 (Circuit.gate_count Circuit.majority3)

let test_replicate_with_voter_masks () =
  (* A TMR'd buffer where we check correct fault-free behaviour. *)
  let buf = Circuit.build ~n_inputs:1 [| Circuit.Input 0; Circuit.Buf 0 |] ~outputs:[| 1 |] in
  let tmr = Circuit.replicate_with_voter buf 3 in
  Alcotest.(check int) "single output" 1 (Circuit.n_outputs tmr);
  List.iter
    (fun b ->
      let out = Circuit.eval tmr [| b |] in
      Alcotest.(check bool) "identity preserved" b out.(0))
    [ true; false ]

let test_tmr_improves_reliability () =
  (* The module must be large enough that its failure probability dominates
     the voter's own: for tiny modules TMR is voter-limited and loses (a
     real effect, exercised in E1). *)
  let rng = Rng.create 42L in
  let c = Circuit.random_logic rng ~n_inputs:4 ~n_gates:400 in
  let tmr = Circuit.replicate_with_voter c 3 in
  let p_gate = 0.002 in
  let simplex = Redundancy.mc_circuit_correct rng c ~trials:3000 ~p_gate in
  let redundant = Redundancy.mc_circuit_correct rng tmr ~trials:3000 ~p_gate in
  Alcotest.(check bool)
    (Printf.sprintf "tmr (%f) > simplex (%f)" redundant simplex)
    true (redundant > simplex)

let test_tmr_voter_limited_regime () =
  (* Converse of the above: TMR around a trivial module is dominated by the
     voter and does not help. *)
  let rng = Rng.create 43L in
  let buf = Circuit.build ~n_inputs:1 [| Circuit.Input 0; Circuit.Buf 0 |] ~outputs:[| 1 |] in
  let tmr = Circuit.replicate_with_voter buf 3 in
  let p_gate = 0.01 in
  let simplex = Redundancy.mc_circuit_correct rng buf ~trials:5000 ~p_gate in
  let redundant = Redundancy.mc_circuit_correct rng tmr ~trials:5000 ~p_gate in
  Alcotest.(check bool)
    (Printf.sprintf "voter-limited: tmr (%f) <= simplex (%f)" redundant simplex)
    true (redundant <= simplex)

(* --- Redundancy --- *)

let test_binomial () =
  Alcotest.(check (float 1e-9)) "C(5,2)" 10.0 (Redundancy.binomial 5 2);
  Alcotest.(check (float 1e-9)) "C(7,0)" 1.0 (Redundancy.binomial 7 0);
  Alcotest.(check (float 1e-9)) "C(4,5)" 0.0 (Redundancy.binomial 4 5)

let test_tmr_formula () =
  List.iter
    (fun r ->
      let expected = (3.0 *. r *. r) -. (2.0 *. r *. r *. r) in
      Alcotest.(check (float 1e-12)) (Printf.sprintf "r=%f" r) expected (Redundancy.r_tmr r))
    [ 0.0; 0.3; 0.5; 0.9; 0.99; 1.0 ]

let test_tmr_crossover_at_half () =
  (* TMR helps above r=0.5, hurts below: the textbook crossover. *)
  Alcotest.(check bool) "above" true (Redundancy.r_tmr 0.9 > 0.9);
  Alcotest.(check bool) "below" true (Redundancy.r_tmr 0.3 < 0.3);
  Alcotest.(check (float 1e-12)) "at half" 0.5 (Redundancy.r_tmr 0.5)

let test_nmr_monotone_in_n () =
  let r = 0.95 in
  Alcotest.(check bool) "5mr beats tmr at high r" true (Redundancy.r_nmr ~n:5 r > Redundancy.r_nmr ~n:3 r)

let test_nmr_voter_penalty () =
  Alcotest.(check bool) "voter degrades" true
    (Redundancy.r_nmr_with_voter ~n:3 ~voter:0.99 0.95 < Redundancy.r_nmr ~n:3 0.95)

let test_mc_matches_analytic () =
  let rng = Rng.create 17L in
  let p_fail = 0.1 in
  let mc = Redundancy.mc_module_nmr rng ~n:3 ~trials:50000 ~p_fail in
  let analytic = 1.0 -. Redundancy.r_tmr (1.0 -. p_fail) in
  Alcotest.(check bool)
    (Printf.sprintf "mc=%f analytic=%f" mc analytic)
    true
    (Float.abs (mc -. analytic) < 0.005)

(* --- Aging --- *)

let test_weibull_hazard_increasing () =
  let w = { Aging.shape = 3.0; scale = 100.0 } in
  Alcotest.(check bool) "wear-out hazard increases" true (Aging.hazard w 50.0 < Aging.hazard w 150.0)

let test_weibull_hazard_decreasing () =
  let w = { Aging.shape = 0.5; scale = 100.0 } in
  Alcotest.(check bool) "infant hazard decreases" true (Aging.hazard w 10.0 > Aging.hazard w 100.0)

let test_weibull_reliability_bounds () =
  let w = { Aging.shape = 2.0; scale = 100.0 } in
  Alcotest.(check (float 1e-9)) "R(0)=1" 1.0 (Aging.reliability w 0.0);
  Alcotest.(check bool) "decreasing" true (Aging.reliability w 50.0 > Aging.reliability w 200.0)

let test_weibull_mttf_exponential_case () =
  (* shape=1 reduces to exponential: MTTF = scale. *)
  let w = { Aging.shape = 1.0; scale = 250.0 } in
  Alcotest.(check (float 0.01)) "mttf" 250.0 (Aging.mttf w)

let test_mttf_matches_sampling () =
  let w = { Aging.shape = 2.0; scale = 100.0 } in
  let rng = Rng.create 23L in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Aging.sample_lifetime rng w
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "sampled %f vs analytic %f" mean (Aging.mttf w))
    true
    (Float.abs (mean -. Aging.mttf w) < 2.0)

let test_bathtub_shape () =
  let b = Aging.default_bathtub in
  let early = Aging.bathtub_hazard b 1.0e6 in
  let mid = Aging.bathtub_hazard b 5.0e9 in
  let late = Aging.bathtub_hazard b 4.0e10 in
  Alcotest.(check bool) "infant mortality high" true (early > mid);
  Alcotest.(check bool) "wear-out high" true (late > mid)

let test_stress_factor () =
  Alcotest.(check (float 1e-9)) "baseline" 1.0 (Aging.stress_factor ~temperature_c:25.0);
  Alcotest.(check (float 1e-9)) "doubles per 10C" 2.0 (Aging.stress_factor ~temperature_c:35.0)

let test_stress_shortens_life () =
  let b = Aging.default_bathtub in
  let r1 = Rng.create 31L and r2 = Rng.create 31L in
  let normal = Aging.sample_bathtub_lifetime r1 b in
  let hot = Aging.sample_bathtub_lifetime r2 ~stress:4.0 b in
  Alcotest.(check (float 1.0)) "4x stress quarters lifetime" (normal /. 4.0) hot

(* --- Complexity --- *)

let test_complexity_circuit_grows () =
  let p = Complexity.default in
  Alcotest.(check bool) "circuit failure grows" true
    (Complexity.p_fail_circuit p ~complexity:1 < Complexity.p_fail_circuit p ~complexity:50)

let test_complexity_small_favors_circuit () =
  let p = Complexity.default in
  Alcotest.(check bool) "USIG-scale favours circuit" true
    (Complexity.p_fail_circuit p ~complexity:1 < Complexity.p_fail_software_hybrid p ~complexity:1)

let test_complexity_crossover_exists () =
  let p = Complexity.default in
  match Complexity.crossover p ~max_complexity:10000 with
  | None -> Alcotest.fail "expected a crossover"
  | Some c ->
    Alcotest.(check bool) "crossover beyond trivial" true (c > 1);
    (* After the crossover, software hybrid is at least as reliable. *)
    Alcotest.(check bool) "sw wins after crossover" true
      (Complexity.p_fail_software_hybrid p ~complexity:(c + 10)
       <= Complexity.p_fail_circuit p ~complexity:(c + 10))

let test_complexity_sweep_shape () =
  let p = Complexity.default in
  let rows = Complexity.sweep p ~max_complexity:100 ~step:10 in
  Alcotest.(check int) "rows" 11 (List.length rows);
  List.iter
    (fun (_, pc, ps) ->
      Alcotest.(check bool) "probabilities" true (pc >= 0.0 && pc <= 1.0 && ps >= 0.0 && ps <= 1.0))
    rows

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_hw"
    [
      ( "ecc",
        [
          Alcotest.test_case "roundtrip basic" `Quick test_ecc_roundtrip_basic;
          Alcotest.test_case "single flip all positions" `Quick test_ecc_single_flip_all_positions;
          Alcotest.test_case "double flip detected" `Slow test_ecc_double_flip_detected;
          Alcotest.test_case "flip bounds" `Quick test_ecc_flip_bounds;
          Alcotest.test_case "flip involutive" `Quick test_ecc_flip_involutive;
        ] );
      qsuite "ecc-prop" [ prop_ecc_roundtrip; prop_ecc_corrects_any_single_flip ];
      ( "register",
        [
          Alcotest.test_case "write read" `Quick test_register_write_read;
          Alcotest.test_case "plain silent corruption" `Quick test_register_plain_silent;
          Alcotest.test_case "parity detects single" `Quick test_register_parity_detects_single;
          Alcotest.test_case "parity misses double" `Quick test_register_parity_misses_double;
          Alcotest.test_case "secded corrects + scrubs" `Quick test_register_secded_corrects;
          Alcotest.test_case "secded detects double" `Quick test_register_secded_detects_double;
          Alcotest.test_case "stored bits" `Quick test_register_stored_bits;
          Alcotest.test_case "gate cost monotone" `Quick test_register_gate_cost_monotone;
          Alcotest.test_case "upset counter" `Quick test_register_upset_counter;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "majority3 truth table" `Quick test_majority3_truth_table;
          Alcotest.test_case "majority5 exhaustive" `Quick test_majority5_exhaustive;
          Alcotest.test_case "majority7 exhaustive" `Quick test_majority7_exhaustive;
          Alcotest.test_case "majority rejects even" `Quick test_majority_rejects_even;
          Alcotest.test_case "xor tree" `Quick test_xor_tree;
          Alcotest.test_case "validation" `Quick test_circuit_validation;
          Alcotest.test_case "p=0 equals golden" `Quick test_circuit_no_faults_at_p0;
          Alcotest.test_case "gate count" `Quick test_circuit_gate_count;
          Alcotest.test_case "voter wiring" `Quick test_replicate_with_voter_masks;
          Alcotest.test_case "tmr improves reliability" `Slow test_tmr_improves_reliability;
          Alcotest.test_case "tmr voter-limited regime" `Slow test_tmr_voter_limited_regime;
        ] );
      ( "redundancy",
        [
          Alcotest.test_case "binomial" `Quick test_binomial;
          Alcotest.test_case "tmr formula" `Quick test_tmr_formula;
          Alcotest.test_case "tmr crossover at 1/2" `Quick test_tmr_crossover_at_half;
          Alcotest.test_case "nmr monotone" `Quick test_nmr_monotone_in_n;
          Alcotest.test_case "voter penalty" `Quick test_nmr_voter_penalty;
          Alcotest.test_case "monte carlo matches analytic" `Slow test_mc_matches_analytic;
        ] );
      ( "aging",
        [
          Alcotest.test_case "hazard increasing" `Quick test_weibull_hazard_increasing;
          Alcotest.test_case "hazard decreasing" `Quick test_weibull_hazard_decreasing;
          Alcotest.test_case "reliability bounds" `Quick test_weibull_reliability_bounds;
          Alcotest.test_case "mttf exponential case" `Quick test_weibull_mttf_exponential_case;
          Alcotest.test_case "mttf matches sampling" `Slow test_mttf_matches_sampling;
          Alcotest.test_case "bathtub shape" `Quick test_bathtub_shape;
          Alcotest.test_case "stress factor" `Quick test_stress_factor;
          Alcotest.test_case "stress shortens life" `Quick test_stress_shortens_life;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "circuit failure grows" `Quick test_complexity_circuit_grows;
          Alcotest.test_case "small favours circuit" `Quick test_complexity_small_favors_circuit;
          Alcotest.test_case "crossover exists" `Quick test_complexity_crossover_exists;
          Alcotest.test_case "sweep shape" `Quick test_complexity_sweep_shape;
        ] );
    ]
