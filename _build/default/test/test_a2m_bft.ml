(* A2M-anchored BFT: the second Hybrid_bft instance. Mirrors the key MinBFT
   behaviours and adds A2M-specific checks (log growth, retrospective
   attestations). *)

open Resoc_repl
module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module A2m = Resoc_hybrid.A2m
module Hash = Resoc_crypto.Hash
module Keychain = Resoc_crypto.Keychain
module Generator = Resoc_workload.Generator
module Group = Resoc_core.Group

let horizon = 300_000

let setup ?(f = 1) ?(n_clients = 1) ?behaviors () =
  let engine = Engine.create () in
  let config = { A2m_bft.default_config with f; n_clients } in
  let n = A2m_bft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + n_clients) () in
  let sys = A2m_bft.start engine fabric config ?behaviors () in
  (engine, sys, n)

let submit_series sys ~count =
  for i = 1 to count do
    A2m_bft.submit sys ~client:0 ~payload:(Int64.of_int i)
  done

let sum_1_to n = Int64.of_int (n * (n + 1) / 2)

let test_happy_path () =
  let engine, sys, n = setup () in
  Alcotest.(check int) "2f+1 replicas" 3 n;
  submit_series sys ~count:5;
  Engine.run ~until:horizon engine;
  let s = A2m_bft.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check int) "no view changes" 0 s.Stats.view_changes;
  for r = 0 to n - 1 do
    Alcotest.(check int64) (Printf.sprintf "replica %d" r) (sum_1_to 5)
      (A2m_bft.replica_state sys ~replica:r)
  done

let test_logs_grow_with_commits () =
  let engine, sys, n = setup () in
  submit_series sys ~count:4;
  Engine.run ~until:horizon engine;
  (* Every replica appended one attestation per statement it certified:
     the primary one per request, backups one commit each. *)
  for r = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "replica %d log non-empty" r)
      true
      (A2m.size (A2m_bft.hybrid sys ~replica:r) >= 4)
  done

let test_retrospective_attestation () =
  (* The A2M's extra power over a USIG: after the run, historical entries
     can be re-attested and verified against the component key. *)
  let engine, sys, _ = setup () in
  submit_series sys ~count:3;
  Engine.run ~until:horizon engine;
  let log = A2m_bft.hybrid sys ~replica:0 in
  let kc = Keychain.create ~master:A2m_bft.default_config.A2m_bft.keychain_master ~n:3 in
  match A2m.lookup log ~seq:1L with
  | None -> Alcotest.fail "expected a first log entry"
  | Some att ->
    Alcotest.(check bool) "historical attestation verifies" true
      (A2m.verify ~key:(Keychain.component kc 0) att)

let test_crash_backup_tolerated () =
  let behaviors = [| Behavior.honest; Behavior.crash_at 0; Behavior.honest |] in
  let engine, sys, _ = setup ~behaviors () in
  submit_series sys ~count:5;
  Engine.run ~until:horizon engine;
  Alcotest.(check int) "completed" 5 (A2m_bft.stats sys).Stats.completed

let test_crash_primary_view_change () =
  let behaviors = [| Behavior.crash_at 10; Behavior.honest; Behavior.honest |] in
  let engine, sys, _ = setup ~behaviors () in
  submit_series sys ~count:5;
  Engine.run ~until:horizon engine;
  let s = A2m_bft.stats sys in
  Alcotest.(check int) "completed" 5 s.Stats.completed;
  Alcotest.(check bool) "view changed" true (s.Stats.view_changes >= 1);
  Alcotest.(check int64) "survivors agree" (A2m_bft.replica_state sys ~replica:1)
    (A2m_bft.replica_state sys ~replica:2)

let test_equivocation_harmless () =
  (* The log forces distinct positions for distinct statements, exactly like
     the USIG counter. *)
  let behaviors = [| Behavior.byzantine Behavior.Equivocate; Behavior.honest; Behavior.honest |] in
  let engine, sys, _ = setup ~behaviors () in
  submit_series sys ~count:5;
  Engine.run ~until:horizon engine;
  let s = A2m_bft.stats sys in
  Alcotest.(check int) "no stall" 5 s.Stats.completed;
  Alcotest.(check int) "no view change" 0 s.Stats.view_changes;
  Alcotest.(check int64) "agreement" (A2m_bft.replica_state sys ~replica:1)
    (A2m_bft.replica_state sys ~replica:2)

let test_corrupt_replies_filtered () =
  let behaviors =
    [| Behavior.honest; Behavior.byzantine Behavior.Corrupt_execution; Behavior.honest |]
  in
  let engine, sys, _ = setup ~behaviors () in
  submit_series sys ~count:4;
  Engine.run ~until:horizon engine;
  let s = A2m_bft.stats sys in
  Alcotest.(check int) "completed" 4 s.Stats.completed;
  Alcotest.(check bool) "dissent observed" true (s.Stats.wrong_replies >= 1)

let test_offline_online () =
  let engine, sys, _ = setup () in
  ignore (Engine.schedule engine ~delay:1_000 (fun () -> A2m_bft.set_offline sys ~replica:2));
  ignore (Engine.schedule engine ~delay:40_000 (fun () -> A2m_bft.set_online sys ~replica:2));
  Engine.every engine ~period:10_000 (fun () ->
      if Engine.now engine <= 80_000 then A2m_bft.submit sys ~client:0 ~payload:1L);
  Engine.run ~until:horizon engine;
  let s = A2m_bft.stats sys in
  Alcotest.(check int) "completed through the cycle" 8 s.Stats.completed;
  Alcotest.(check int64) "rejoined replica consistent" (A2m_bft.replica_state sys ~replica:0)
    (A2m_bft.replica_state sys ~replica:2)

let test_group_integration () =
  let engine = Engine.create () in
  let spec = { Group.default_spec with kind = `A2m_bft; n_clients = 1 } in
  let group = Group.build engine (Group.Hub { latency = 5 }) spec in
  Alcotest.(check string) "protocol name" "a2m-bft" group.Group.protocol;
  Alcotest.(check int) "2f+1" 3 group.Group.n_replicas;
  Generator.burst ~n_per_client:5 ~n_clients:1 ~submit:group.Group.submit;
  Engine.run ~until:horizon engine;
  Alcotest.(check int) "completed via group" 5 (group.Group.stats ()).Stats.completed

let test_same_quorums_as_minbft () =
  (* Both Hybrid_bft instances complete the same workload with the same
     message count over the same fabric: the agreement core is shared. *)
  let engine_a = Engine.create () in
  let fabric_a = Transport.hub engine_a ~n:4 () in
  let sys_a = A2m_bft.start engine_a fabric_a { A2m_bft.default_config with n_clients = 1 } () in
  for i = 1 to 6 do
    A2m_bft.submit sys_a ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:horizon engine_a;
  let engine_m = Engine.create () in
  let fabric_m = Transport.hub engine_m ~n:4 () in
  let sys_m = Minbft.start engine_m fabric_m { Minbft.default_config with n_clients = 1 } () in
  for i = 1 to 6 do
    Minbft.submit sys_m ~client:0 ~payload:(Int64.of_int i)
  done;
  Engine.run ~until:horizon engine_m;
  Alcotest.(check int) "same messages as minbft" (fabric_m.Transport.messages_sent ())
    (fabric_a.Transport.messages_sent ());
  Alcotest.(check int64) "same state" (Minbft.replica_state sys_m ~replica:0)
    (A2m_bft.replica_state sys_a ~replica:0)

let () =
  Alcotest.run "resoc_a2m_bft"
    [
      ( "a2m-bft",
        [
          Alcotest.test_case "happy path" `Quick test_happy_path;
          Alcotest.test_case "logs grow" `Quick test_logs_grow_with_commits;
          Alcotest.test_case "retrospective attestation" `Quick test_retrospective_attestation;
          Alcotest.test_case "crash backup tolerated" `Quick test_crash_backup_tolerated;
          Alcotest.test_case "crash primary view change" `Quick test_crash_primary_view_change;
          Alcotest.test_case "equivocation harmless" `Quick test_equivocation_harmless;
          Alcotest.test_case "corrupt replies filtered" `Quick test_corrupt_replies_filtered;
          Alcotest.test_case "offline/online" `Quick test_offline_online;
          Alcotest.test_case "group integration" `Quick test_group_integration;
          Alcotest.test_case "same quorums as minbft" `Quick test_same_quorums_as_minbft;
        ] );
    ]
