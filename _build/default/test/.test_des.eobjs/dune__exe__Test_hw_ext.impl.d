test/test_hw_ext.ml: Alcotest Float List Lockstep Printf QCheck QCheck_alcotest Razor Resoc_des Resoc_hw Resoc_noc Sinw Stack3d
