test/test_noc.ml: Alcotest List Mesh Network Printf QCheck QCheck_alcotest Resoc_des Resoc_noc
