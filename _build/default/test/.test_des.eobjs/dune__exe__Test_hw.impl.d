test/test_hw.ml: Aging Alcotest Array Circuit Complexity Ecc Float Int64 List Printf QCheck QCheck_alcotest Redundancy Register Resoc_des Resoc_hw
