test/test_hw_ext.mli:
