test/test_repl.ml: Alcotest App Array Int64 List Minbft Paxos Pbft Primary_backup Printf Resoc_des Resoc_fault Resoc_hw Resoc_hybrid Resoc_repl Stats Transport
