test/test_protocol_props.ml: Alcotest Array Fun Gen Int64 List Minbft Printf QCheck QCheck_alcotest Resoc_core Resoc_des Resoc_fault Resoc_repl Resoc_workload Stats String Transport
