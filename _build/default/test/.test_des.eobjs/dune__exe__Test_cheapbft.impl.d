test/test_cheapbft.ml: Alcotest Array Cheapbft Int64 Minbft Printf Resoc_des Resoc_fault Resoc_hybrid Resoc_repl Stats Transport
