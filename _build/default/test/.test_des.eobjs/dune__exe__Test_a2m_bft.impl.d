test/test_a2m_bft.ml: A2m_bft Alcotest Int64 Minbft Printf Resoc_core Resoc_crypto Resoc_des Resoc_fault Resoc_hybrid Resoc_repl Resoc_workload Stats Transport
