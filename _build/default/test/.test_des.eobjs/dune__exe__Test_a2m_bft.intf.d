test/test_a2m_bft.mli:
