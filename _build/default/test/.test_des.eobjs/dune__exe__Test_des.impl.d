test/test_des.ml: Alcotest Array Engine Float Fun Heap Int64 List Metrics QCheck QCheck_alcotest Resoc_des Rng Trace
