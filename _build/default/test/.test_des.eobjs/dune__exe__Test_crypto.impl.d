test/test_crypto.ml: Alcotest Bytes Hash Keychain List Mac QCheck QCheck_alcotest Resoc_crypto Resoc_des String
