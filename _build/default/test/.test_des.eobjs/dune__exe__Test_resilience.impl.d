test/test_resilience.ml: Adaptation Alcotest Array Diversity Governance List Printf Rejuvenation Resoc_des Resoc_fabric Resoc_fault Resoc_resilience Threat
