test/test_misc.ml: Alcotest Client Format Int64 List Resoc_core Resoc_crypto Resoc_des Resoc_fault Resoc_hw Resoc_hybrid Resoc_repl Resoc_resilience Stats String Transport Types
