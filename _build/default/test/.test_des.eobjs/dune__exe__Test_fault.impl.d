test/test_fault.ml: Alcotest Apt Array Behavior Common_mode List Printf Resoc_des Resoc_fault Resoc_hw Seu Trojan
