test/test_core.ml: Alcotest Array Group Int64 List Printf Protocol_switch Resilient_system Resoc_core Resoc_des Resoc_fault Resoc_repl Resoc_resilience Resoc_workload Soc
