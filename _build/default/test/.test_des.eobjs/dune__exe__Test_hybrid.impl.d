test/test_hybrid.ml: A2m Alcotest Int64 List Resoc_crypto Resoc_des Resoc_hw Resoc_hybrid Trinc Usig
