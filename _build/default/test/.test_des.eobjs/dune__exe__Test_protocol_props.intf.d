test/test_protocol_props.mli:
