test/test_fabric.ml: Alcotest Bitstream Grid Icap List Region Resoc_des Resoc_fabric
