test/test_cheapbft.mli:
