open Resoc_fault
module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Register = Resoc_hw.Register

(* --- Behavior --- *)

let test_behavior_honest () =
  Alcotest.(check bool) "never crashed" false (Behavior.is_crashed Behavior.honest ~now:1000);
  Alcotest.(check bool) "no strategy" true (Behavior.active_strategy Behavior.honest ~now:0 = None);
  Alcotest.(check bool) "not faulty" false (Behavior.is_faulty Behavior.honest)

let test_behavior_crash () =
  let b = Behavior.crash_at 50 in
  Alcotest.(check bool) "before" false (Behavior.is_crashed b ~now:49);
  Alcotest.(check bool) "at" true (Behavior.is_crashed b ~now:50);
  Alcotest.(check bool) "after" true (Behavior.is_crashed b ~now:51);
  Alcotest.(check bool) "faulty" true (Behavior.is_faulty b)

let test_behavior_byzantine_window () =
  let b = Behavior.byzantine ~from_cycle:100 Behavior.Equivocate in
  Alcotest.(check bool) "dormant before" true (Behavior.active_strategy b ~now:99 = None);
  Alcotest.(check bool) "active after" true
    (Behavior.active_strategy b ~now:100 = Some Behavior.Equivocate)

(* --- Seu --- *)

let test_seu_zero_rate () =
  let engine = Engine.create () in
  let regs = [| Register.create Register.Plain 0L |] in
  let seu = Seu.start engine (Rng.create 1L) ~rate_per_bit_cycle:0.0 regs in
  Engine.run ~until:10000 engine;
  Alcotest.(check int) "nothing injected" 0 (Seu.injected seu)

let test_seu_injects_at_rate () =
  let engine = Engine.create () in
  let regs = Array.init 10 (fun _ -> Register.create Register.Plain 0L) in
  (* 640 bits * 1e-4 upsets/bit/cycle = 0.064 upsets/cycle; over 10k cycles
     expect ~640. *)
  let seu = Seu.start engine (Rng.create 2L) ~rate_per_bit_cycle:1.0e-4 regs in
  Engine.run ~until:10000 engine;
  let n = Seu.injected seu in
  Alcotest.(check bool) (Printf.sprintf "rate plausible (%d)" n) true (n > 400 && n < 900)

let test_seu_halt () =
  let engine = Engine.create () in
  let regs = [| Register.create Register.Plain 0L |] in
  let seu = Seu.start engine (Rng.create 3L) ~rate_per_bit_cycle:0.01 regs in
  ignore (Engine.schedule engine ~delay:100 (fun () -> Seu.halt seu));
  Engine.run ~until:10000 engine;
  let at_halt = Seu.injected seu in
  Engine.run ~until:20000 engine;
  Alcotest.(check int) "no injections after halt" at_halt (Seu.injected seu)

let test_seu_prefers_bigger_registers () =
  (* A register with more stored bits should absorb proportionally more. *)
  let engine = Engine.create () in
  let small = Register.create Register.Plain 0L in
  let big = Register.create Register.Secded 0L in
  let regs = [| small; big |] in
  let _ = Seu.start engine (Rng.create 4L) ~rate_per_bit_cycle:1.0e-3 regs in
  Engine.run ~until:50000 engine;
  let s = Register.upsets_injected small and b = Register.upsets_injected big in
  Alcotest.(check bool)
    (Printf.sprintf "bigger absorbs more (%d vs %d)" b s)
    true
    (float_of_int b > float_of_int s *. 0.9)

(* --- Apt --- *)

let make_apt ?(n_variants = 4) ?(mean = 1000.0) ?(exposure = 100) ?backdoor_delay () =
  let engine = Engine.create () in
  let rng = Rng.create 7L in
  let apt = Apt.create engine rng ~n_variants ~mean_exploit_cycles:mean ~exposure ?backdoor_delay () in
  (engine, apt)

let test_apt_compromise_fires () =
  let engine, apt = make_apt () in
  let hit = ref [] in
  let _ = Apt.register_target apt ~id:1 ~variant:0 ~on_compromise:(fun id -> hit := id :: !hit) () in
  Engine.run ~until:1_000_000 engine;
  Alcotest.(check (list int)) "compromised once" [ 1 ] !hit

let test_apt_compromise_timing () =
  let engine, apt = make_apt () in
  let at = ref (-1) in
  Alcotest.(check bool) "undeployed variant unknown" true
    (Apt.exploit_ready_at apt ~variant:2 = None);
  let _ = Apt.register_target apt ~id:0 ~variant:2 ~on_compromise:(fun _ -> at := Engine.now engine) () in
  let ready =
    match Apt.exploit_ready_at apt ~variant:2 with
    | Some r -> r
    | None -> Alcotest.fail "deployment queues development"
  in
  Engine.run ~until:1_000_000 engine;
  Alcotest.(check int) "exploit ready + exposure" (ready + 100) !at

let test_apt_deactivate_prevents () =
  let engine, apt = make_apt () in
  let hit = ref 0 in
  let tg = Apt.register_target apt ~id:0 ~variant:0 ~on_compromise:(fun _ -> incr hit) () in
  Apt.deactivate apt tg;
  Engine.run ~until:1_000_000 engine;
  Alcotest.(check int) "never compromised" 0 !hit

let test_apt_rejuvenation_same_variant_recompromised () =
  let engine, apt = make_apt ~n_variants:1 ~mean:10.0 ~exposure:50 () in
  let hits = ref [] in
  let tg =
    Apt.register_target apt ~id:0 ~variant:0
      ~on_compromise:(fun _ -> hits := Engine.now engine :: !hits)
      ()
  in
  (* Rejuvenate (same variant) at t=1000; exploit already exists, so the
     adversary walks back in after one more exposure period. *)
  ignore (Engine.schedule engine ~delay:1000 (fun () -> Apt.rejuvenate apt tg ~variant:0 ()));
  Engine.run ~until:10_000 engine;
  (match List.rev !hits with
   | [ _first; second ] -> Alcotest.(check int) "re-compromised after exposure" 1050 second
   | l -> Alcotest.failf "expected 2 compromises, got %d" (List.length l))

let test_apt_diverse_rejuvenation_delays () =
  (* Switching variants at rejuvenation forces the adversary to develop a
     NEW exploit (queued behind its current work): the next compromise
     waits for that development to finish. *)
  let engine = Engine.create () in
  let rng = Rng.create 11L in
  let apt = Apt.create engine rng ~n_variants:8 ~mean_exploit_cycles:100_000.0 ~exposure:10 () in
  let hits = ref [] in
  let tg =
    Apt.register_target apt ~id:0 ~variant:0
      ~on_compromise:(fun _ -> hits := Engine.now engine :: !hits)
      ()
  in
  let d0 =
    match Apt.exploit_ready_at apt ~variant:0 with Some d -> d | None -> Alcotest.fail "queued"
  in
  let first_fall = d0 + 10 in
  ignore (Engine.at engine ~time:(first_fall + 1) (fun () -> Apt.rejuvenate apt tg ~variant:5 ()));
  Engine.run ~until:100_000_000 engine;
  let d5 =
    match Apt.exploit_ready_at apt ~variant:5 with Some d -> d | None -> Alcotest.fail "queued 5"
  in
  Alcotest.(check bool) "new exploit developed after the switch" true (d5 > first_fall);
  (match List.rev !hits with
   | [ f; s ] ->
     Alcotest.(check int) "first fall" first_fall f;
     Alcotest.(check int) "second waits for the new exploit" (d5 + 10) s
   | l -> Alcotest.failf "expected 2 compromises, got %d" (List.length l))

let test_apt_backdoor_ignores_variant () =
  let engine, apt = make_apt ~mean:1.0e12 ~exposure:100 ~backdoor_delay:500 () in
  let at = ref (-1) in
  let _ =
    Apt.register_target apt ~id:0 ~variant:0 ~backdoored:true
      ~on_compromise:(fun _ -> at := Engine.now engine)
      ()
  in
  Engine.run ~until:1_000_000 engine;
  Alcotest.(check int) "backdoor delay" 500 !at

let test_apt_relocation_escapes_backdoor () =
  let engine, apt = make_apt ~mean:1.0e12 ~exposure:100 ~backdoor_delay:500 () in
  let hit = ref 0 in
  let tg =
    Apt.register_target apt ~id:0 ~variant:0 ~backdoored:true ~on_compromise:(fun _ -> incr hit) ()
  in
  (* Relocate off the trojaned frames before the backdoor matures. *)
  ignore (Engine.schedule engine ~delay:400 (fun () -> Apt.rejuvenate apt tg ~variant:0 ~backdoored:false ()));
  Engine.run ~until:1_000_000 engine;
  Alcotest.(check int) "never compromised via backdoor" 0 !hit

let test_apt_compromised_count () =
  let engine, apt = make_apt ~n_variants:2 ~mean:100.0 ~exposure:10 () in
  let _ = Apt.register_target apt ~id:0 ~variant:0 ~on_compromise:(fun _ -> ()) () in
  let _ = Apt.register_target apt ~id:1 ~variant:1 ~on_compromise:(fun _ -> ()) () in
  Engine.run ~until:1_000_000 engine;
  Alcotest.(check int) "both down" 2 (Apt.compromised_count apt);
  Alcotest.(check int) "both active" 2 (Apt.active_count apt)

(* --- Common_mode --- *)

let test_cm_diagonal_fixed () =
  let cm = Common_mode.create ~n_variants:3 ~shared_prob:0.2 in
  Alcotest.(check (float 1e-9)) "diagonal" 1.0 (Common_mode.shared_prob cm 1 1);
  Alcotest.(check (float 1e-9)) "off-diagonal" 0.2 (Common_mode.shared_prob cm 0 2)

let test_cm_set_shared_symmetric () =
  let cm = Common_mode.create ~n_variants:3 ~shared_prob:0.0 in
  Common_mode.set_shared cm 0 2 0.7;
  Alcotest.(check (float 1e-9)) "symmetric" 0.7 (Common_mode.shared_prob cm 2 0)

let test_cm_sample_trigger_always_affected () =
  let cm = Common_mode.create ~n_variants:4 ~shared_prob:0.0 in
  let rng = Rng.create 13L in
  let affected = Common_mode.sample_affected cm rng ~trigger:2 in
  Alcotest.(check bool) "trigger affected" true affected.(2);
  Alcotest.(check bool) "others independent at q=0" false (affected.(0) || affected.(1) || affected.(3))

let test_cm_identical_variants_always_defeated () =
  let cm = Common_mode.create ~n_variants:4 ~shared_prob:0.0 in
  let rng = Rng.create 14L in
  (* All replicas on variant 0: any vulnerability in the running variant
     hits everyone. *)
  let p = Common_mode.p_group_compromise cm rng ~assignment:[| 0; 0; 0; 0 |] ~f:1 ~trials:2000 in
  Alcotest.(check (float 1e-9)) "always defeated" 1.0 p

let test_cm_diverse_group_survives_at_q0 () =
  let cm = Common_mode.create ~n_variants:4 ~shared_prob:0.0 in
  let rng = Rng.create 15L in
  let p = Common_mode.p_group_compromise cm rng ~assignment:[| 0; 1; 2; 3 |] ~f:1 ~trials:2000 in
  Alcotest.(check (float 1e-9)) "one variant = one replica <= f" 0.0 p

let test_cm_sharing_increases_risk () =
  let rng = Rng.create 16L in
  let p_at q =
    let cm = Common_mode.create ~n_variants:4 ~shared_prob:q in
    Common_mode.p_group_compromise cm rng ~assignment:[| 0; 1; 2; 3 |] ~f:1 ~trials:5000
  in
  let p_low = p_at 0.1 and p_high = p_at 0.6 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone in q (%f < %f)" p_low p_high)
    true (p_low < p_high)

let test_cm_max_diversity_assignment () =
  let cm = Common_mode.create ~n_variants:4 ~shared_prob:0.1 in
  let a = Common_mode.max_diversity_assignment cm ~n_replicas:4 in
  let distinct = List.sort_uniq compare (Array.to_list a) in
  Alcotest.(check int) "all distinct when pool suffices" 4 (List.length distinct)

let test_cm_assignment_reuses_when_pool_small () =
  let cm = Common_mode.create ~n_variants:2 ~shared_prob:0.1 in
  let a = Common_mode.max_diversity_assignment cm ~n_replicas:5 in
  Alcotest.(check int) "5 replicas" 5 (Array.length a);
  let count v = Array.fold_left (fun acc x -> if x = v then acc + 1 else acc) 0 a in
  Alcotest.(check bool) "balanced reuse" true (abs (count 0 - count 1) <= 1)

let test_cm_avoids_correlated_variants () =
  (* Variants 0 and 1 share everything; 2 is independent. A 2-replica group
     should pick {0 or 1} plus 2, not {0,1}. *)
  let cm = Common_mode.create ~n_variants:3 ~shared_prob:0.0 in
  Common_mode.set_shared cm 0 1 1.0;
  let a = Common_mode.max_diversity_assignment cm ~n_replicas:2 in
  let has v = Array.exists (( = ) v) a in
  Alcotest.(check bool) "uses the independent variant" true (has 2);
  Alcotest.(check bool) "not both correlated" false (has 0 && has 1)

(* --- Trojan --- *)

let test_trojan_time_bomb () =
  let engine = Engine.create () in
  let fired = ref (-1) in
  let t =
    Trojan.plant engine (Trojan.Time_bomb 500) Trojan.Kill_switch ~on_trigger:(fun _ ->
        fired := Engine.now engine)
  in
  Engine.run ~until:1000 engine;
  Alcotest.(check int) "fires at 500" 500 !fired;
  Alcotest.(check bool) "triggered" true (Trojan.triggered t)

let test_trojan_cheat_code () =
  let engine = Engine.create () in
  let fired = ref false in
  let t =
    Trojan.plant engine (Trojan.Cheat_code 0xDEADL) Trojan.Corrupt_output ~on_trigger:(fun _ ->
        fired := true)
  in
  Trojan.observe t 0x1234L;
  Alcotest.(check bool) "wrong code inert" false !fired;
  Trojan.observe t 0xDEADL;
  Alcotest.(check bool) "code fires" true !fired

let test_trojan_fires_once () =
  let engine = Engine.create () in
  let count = ref 0 in
  let t =
    Trojan.plant engine (Trojan.Cheat_code 1L) Trojan.Leak_secret ~on_trigger:(fun _ -> incr count)
  in
  Trojan.observe t 1L;
  Trojan.observe t 1L;
  Alcotest.(check int) "single shot" 1 !count

let test_trojan_disarm () =
  let engine = Engine.create () in
  let fired = ref false in
  let t = Trojan.plant engine (Trojan.Time_bomb 100) Trojan.Kill_switch ~on_trigger:(fun _ -> fired := true) in
  Trojan.disarm t;
  Engine.run ~until:1000 engine;
  Alcotest.(check bool) "disarmed never fires" false !fired

let () =
  Alcotest.run "resoc_fault"
    [
      ( "behavior",
        [
          Alcotest.test_case "honest" `Quick test_behavior_honest;
          Alcotest.test_case "crash" `Quick test_behavior_crash;
          Alcotest.test_case "byzantine window" `Quick test_behavior_byzantine_window;
        ] );
      ( "seu",
        [
          Alcotest.test_case "zero rate" `Quick test_seu_zero_rate;
          Alcotest.test_case "injects at rate" `Slow test_seu_injects_at_rate;
          Alcotest.test_case "halt" `Quick test_seu_halt;
          Alcotest.test_case "weighted by size" `Slow test_seu_prefers_bigger_registers;
        ] );
      ( "apt",
        [
          Alcotest.test_case "compromise fires" `Quick test_apt_compromise_fires;
          Alcotest.test_case "timing" `Quick test_apt_compromise_timing;
          Alcotest.test_case "deactivate" `Quick test_apt_deactivate_prevents;
          Alcotest.test_case "same-variant rejuvenation re-falls" `Quick
            test_apt_rejuvenation_same_variant_recompromised;
          Alcotest.test_case "diverse rejuvenation delays" `Quick test_apt_diverse_rejuvenation_delays;
          Alcotest.test_case "backdoor ignores variant" `Quick test_apt_backdoor_ignores_variant;
          Alcotest.test_case "relocation escapes backdoor" `Quick test_apt_relocation_escapes_backdoor;
          Alcotest.test_case "compromised count" `Quick test_apt_compromised_count;
        ] );
      ( "common-mode",
        [
          Alcotest.test_case "diagonal fixed" `Quick test_cm_diagonal_fixed;
          Alcotest.test_case "symmetric set" `Quick test_cm_set_shared_symmetric;
          Alcotest.test_case "trigger affected" `Quick test_cm_sample_trigger_always_affected;
          Alcotest.test_case "identical variants defeated" `Quick test_cm_identical_variants_always_defeated;
          Alcotest.test_case "diverse survives at q=0" `Quick test_cm_diverse_group_survives_at_q0;
          Alcotest.test_case "sharing increases risk" `Slow test_cm_sharing_increases_risk;
          Alcotest.test_case "max diversity assignment" `Quick test_cm_max_diversity_assignment;
          Alcotest.test_case "balanced reuse" `Quick test_cm_assignment_reuses_when_pool_small;
          Alcotest.test_case "avoids correlated variants" `Quick test_cm_avoids_correlated_variants;
        ] );
      ( "trojan",
        [
          Alcotest.test_case "time bomb" `Quick test_trojan_time_bomb;
          Alcotest.test_case "cheat code" `Quick test_trojan_cheat_code;
          Alcotest.test_case "fires once" `Quick test_trojan_fires_once;
          Alcotest.test_case "disarm" `Quick test_trojan_disarm;
        ] );
    ]
