open Resoc_resilience
module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Common_mode = Resoc_fault.Common_mode
module Region = Resoc_fabric.Region
module Grid = Resoc_fabric.Grid
module Icap = Resoc_fabric.Icap
module Bitstream = Resoc_fabric.Bitstream

(* --- Diversity --- *)

let pool q = Common_mode.create ~n_variants:4 ~shared_prob:q

let test_diversity_same () =
  let d = Diversity.create ~pool:(pool 0.1) Diversity.Same in
  Alcotest.(check (array int)) "monoculture" [| 0; 0; 0 |] (Diversity.initial_assignment d ~n_replicas:3);
  Alcotest.(check int) "rejuvenates to same" 0
    (Diversity.rejuvenation_variant d ~replica:1 ~current:[| 0; 0; 0 |])

let test_diversity_round_robin () =
  let d = Diversity.create ~pool:(pool 0.1) Diversity.Round_robin in
  Alcotest.(check (array int)) "rotation" [| 0; 1; 2; 3; 0 |] (Diversity.initial_assignment d ~n_replicas:5);
  Alcotest.(check int) "advances" 2 (Diversity.rejuvenation_variant d ~replica:0 ~current:[| 1; 2; 3 |])

let test_diversity_max_distinct () =
  let d = Diversity.create ~pool:(pool 0.1) Diversity.Max_diversity in
  let a = Diversity.initial_assignment d ~n_replicas:4 in
  Alcotest.(check int) "all distinct" 4 (List.length (List.sort_uniq compare (Array.to_list a)))

let test_diversity_rejuvenation_changes_variant () =
  let d = Diversity.create ~pool:(pool 0.1) Diversity.Max_diversity in
  (* With 4 variants and 3 replicas on 0,1,2, the unused variant 3 is the
     least-correlated fresh choice. *)
  Alcotest.(check int) "moves to unused variant" 3
    (Diversity.rejuvenation_variant d ~replica:0 ~current:[| 0; 1; 2 |])

let test_diversity_risk_ordering () =
  let d_same = Diversity.create ~pool:(pool 0.2) Diversity.Same in
  let d_max = Diversity.create ~pool:(pool 0.2) Diversity.Max_diversity in
  let risk_same =
    Diversity.expected_group_risk d_same ~assignment:(Diversity.initial_assignment d_same ~n_replicas:4)
  in
  let risk_max =
    Diversity.expected_group_risk d_max ~assignment:(Diversity.initial_assignment d_max ~n_replicas:4)
  in
  Alcotest.(check bool)
    (Printf.sprintf "monoculture risk %f > diverse %f" risk_same risk_max)
    true (risk_same > risk_max)

(* --- Rejuvenation --- *)

let make_hooks ?(n = 4) ?(choose = fun _ -> 0) log =
  {
    Rejuvenation.n_replicas = n;
    take_offline = (fun r -> log := `Off r :: !log);
    bring_online = (fun r -> log := `On r :: !log);
    choose_variant = choose;
    on_restart = (fun ~replica ~variant -> log := `Restart (replica, variant) :: !log);
  }

let test_rejuvenation_round_robin_staggered () =
  let engine = Engine.create () in
  let log = ref [] in
  let mgr =
    Rejuvenation.start engine { Rejuvenation.period = 1_000; downtime = 100 } (make_hooks log)
  in
  Engine.run ~until:4_500 engine;
  Alcotest.(check int) "four rejuvenations" 4 (Rejuvenation.rejuvenations mgr);
  let order = List.filter_map (function `Off r -> Some r | _ -> None) (List.rev !log) in
  Alcotest.(check (list int)) "round robin order" [ 0; 1; 2; 3 ] order

let test_rejuvenation_at_most_one_down () =
  let engine = Engine.create () in
  let log = ref [] in
  let mgr =
    Rejuvenation.start engine { Rejuvenation.period = 1_000; downtime = 500 } (make_hooks log)
  in
  let max_down = ref 0 in
  Engine.every engine ~period:50 (fun () -> max_down := max !max_down (Rejuvenation.in_progress mgr));
  Engine.run ~until:10_000 engine;
  Alcotest.(check int) "quorum-preserving stagger" 1 !max_down

let test_rejuvenation_downtime_respected () =
  let engine = Engine.create () in
  let log = ref [] in
  let _ = Rejuvenation.start engine { Rejuvenation.period = 1_000; downtime = 250 } (make_hooks log) in
  Engine.run ~until:1_500 engine;
  let events = List.rev !log in
  (match events with
   | `Off 0 :: `On 0 :: `Restart (0, _) :: _ -> ()
   | _ -> Alcotest.fail "expected off/on/restart sequence");
  ignore events

let test_rejuvenation_variant_hook () =
  let engine = Engine.create () in
  let log = ref [] in
  let _ =
    Rejuvenation.start engine
      { Rejuvenation.period = 1_000; downtime = 100 }
      (make_hooks ~choose:(fun r -> r + 10) log)
  in
  Engine.run ~until:2_500 engine;
  let restarts = List.filter_map (function `Restart (r, v) -> Some (r, v) | _ -> None) (List.rev !log) in
  Alcotest.(check (list (pair int int))) "variants chosen per replica" [ (0, 10); (1, 11) ] restarts

let test_rejuvenation_reactive () =
  let engine = Engine.create () in
  let log = ref [] in
  let mgr = Rejuvenation.start engine { Rejuvenation.period = 10_000; downtime = 100 } (make_hooks log) in
  ignore (Engine.schedule engine ~delay:50 (fun () -> Rejuvenation.rejuvenate_now mgr ~replica:2));
  Engine.run ~until:1_000 engine;
  Alcotest.(check int) "reactive rejuvenation counted" 1 (Rejuvenation.rejuvenations mgr);
  let order = List.filter_map (function `Off r -> Some r | _ -> None) (List.rev !log) in
  Alcotest.(check (list int)) "targeted replica" [ 2 ] order

let test_rejuvenation_stop () =
  let engine = Engine.create () in
  let log = ref [] in
  let mgr = Rejuvenation.start engine { Rejuvenation.period = 100; downtime = 10 } (make_hooks log) in
  ignore (Engine.schedule engine ~delay:250 (fun () -> Rejuvenation.stop mgr));
  Engine.run ~until:2_000 engine;
  Alcotest.(check int) "stopped after two" 2 (Rejuvenation.rejuvenations mgr)

let test_rejuvenation_validates_policy () =
  let engine = Engine.create () in
  Alcotest.check_raises "downtime >= period"
    (Invalid_argument "Rejuvenation.start: downtime must be shorter than the stagger period")
    (fun () ->
      ignore (Rejuvenation.start engine { Rejuvenation.period = 100; downtime = 100 } (make_hooks (ref []))))

(* --- Threat --- *)

let test_threat_accumulates () =
  let engine = Engine.create () in
  let th = Threat.create engine ~half_life:1_000 in
  Threat.report th ();
  Threat.report th ();
  Alcotest.(check (float 1e-9)) "two events" 2.0 (Threat.level th);
  Alcotest.(check int) "counted" 2 (Threat.events_total th)

let test_threat_decays () =
  let engine = Engine.create () in
  let th = Threat.create engine ~half_life:1_000 in
  Threat.report th ~weight:4.0 ();
  ignore (Engine.schedule engine ~delay:1_000 (fun () ->
      Alcotest.(check (float 0.01)) "half life" 2.0 (Threat.level th)));
  ignore (Engine.schedule engine ~delay:2_000 (fun () ->
      Alcotest.(check (float 0.01)) "two half lives" 1.0 (Threat.level th)));
  Engine.run engine

let test_threat_reset () =
  let engine = Engine.create () in
  let th = Threat.create engine ~half_life:1_000 in
  Threat.report th ();
  Threat.reset th;
  Alcotest.(check (float 1e-9)) "cleared" 0.0 (Threat.level th)

(* --- Adaptation --- *)

let test_adaptation_raises_under_threat () =
  let engine = Engine.create () in
  let th = Threat.create engine ~half_life:5_000 in
  let f = ref 1 in
  let policy = { Adaptation.default_policy with eval_period = 500; cooldown = 1_000 } in
  let peak = ref 1 in
  let mgr =
    Adaptation.start engine policy th
      { Adaptation.current_f = (fun () -> !f);
        scale_to = (fun f' -> f := f'; peak := max !peak f') }
  in
  (* Burst of suspicious events at t=2000. *)
  ignore (Engine.schedule engine ~delay:2_000 (fun () -> for _ = 1 to 5 do Threat.report th () done));
  Engine.run ~until:20_000 engine;
  Alcotest.(check bool) "f raised during the surge" true (!peak >= 2);
  (match Adaptation.actions mgr with
   | (_, Adaptation.Raise_f 2) :: _ -> ()
   | _ -> Alcotest.fail "first action should raise f to 2")

let test_adaptation_lowers_when_calm () =
  let engine = Engine.create () in
  let th = Threat.create engine ~half_life:2_000 in
  let f = ref 1 in
  let policy = { Adaptation.default_policy with eval_period = 500; cooldown = 1_000 } in
  let _ =
    Adaptation.start engine policy th
      { Adaptation.current_f = (fun () -> !f); scale_to = (fun f' -> f := f') }
  in
  ignore (Engine.schedule engine ~delay:1_000 (fun () -> for _ = 1 to 5 do Threat.report th () done));
  Engine.run ~until:60_000 engine;
  (* Threat long decayed: back at the floor. *)
  Alcotest.(check int) "returned to f_min" 1 !f

let test_adaptation_respects_f_max () =
  let engine = Engine.create () in
  let th = Threat.create engine ~half_life:1_000_000 in
  let f = ref 1 in
  let policy = { Adaptation.default_policy with f_max = 2; eval_period = 500; cooldown = 500 } in
  let _ =
    Adaptation.start engine policy th
      { Adaptation.current_f = (fun () -> !f); scale_to = (fun f' -> f := f') }
  in
  for _ = 1 to 100 do Threat.report th () done;
  Engine.run ~until:30_000 engine;
  Alcotest.(check int) "capped at f_max" 2 !f

let test_adaptation_cooldown_limits_rate () =
  let engine = Engine.create () in
  let th = Threat.create engine ~half_life:1_000_000 in
  let f = ref 0 in
  let policy =
    { Adaptation.default_policy with f_min = 0; f_max = 100; eval_period = 100; cooldown = 5_000 }
  in
  let mgr =
    Adaptation.start engine policy th
      { Adaptation.current_f = (fun () -> !f); scale_to = (fun f' -> f := f') }
  in
  for _ = 1 to 100 do Threat.report th () done;
  Engine.run ~until:10_500 engine;
  Alcotest.(check bool) "at most 3 actions in 10.5k cycles" true
    (List.length (Adaptation.actions mgr) <= 3)

let test_adaptation_hysteresis_validated () =
  let engine = Engine.create () in
  let th = Threat.create engine ~half_life:1_000 in
  Alcotest.check_raises "bad thresholds"
    (Invalid_argument "Adaptation.start: thresholds must leave a hysteresis band") (fun () ->
      ignore
        (Adaptation.start engine
           { Adaptation.default_policy with raise_threshold = 1.0; lower_threshold = 2.0 }
           th
           { Adaptation.current_f = (fun () -> 1); scale_to = ignore }))

(* --- Governance --- *)

let governance_setup ?(n_kernels = 4) ?(threshold = 3) ?malicious () =
  let engine = Engine.create () in
  let grid = Grid.create ~width:8 ~height:8 in
  let icap = Icap.create engine grid () in
  let governance_principal = 100 in
  Icap.grant icap ~principal:governance_principal ~region:(Region.make ~x:0 ~y:0 ~w:8 ~h:8);
  (* Victim principal 1 owns a slot. *)
  let slot =
    match Grid.place grid ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2) ~variant:1 ~owner:1 with
    | Ok id -> id
    | Error e -> Alcotest.failf "setup place failed: %s" e
  in
  let gov = Governance.create engine icap ~n_kernels ~threshold ?malicious ~governance_principal () in
  (engine, gov, slot)

let legit_op slot = { Governance.slot; bitstream = Bitstream.make ~variant:2 ~w:2 ~h:2; requestor = 1 }

let rogue_op slot =
  (* Valid bitstream, but the requestor does not own the slot: a hijack. *)
  { Governance.slot; bitstream = Bitstream.make ~variant:9 ~w:2 ~h:2; requestor = 66 }

let test_governance_executes_legitimate () =
  let engine, gov, slot = governance_setup () in
  let result = ref None in
  Governance.propose gov ~proposer:0 (legit_op slot) (fun d -> result := Some d);
  Engine.run engine;
  (match !result with
   | Some (Governance.Executed _) -> ()
   | _ -> Alcotest.fail "legitimate op should execute");
  Alcotest.(check int) "counted" 1 (Governance.executed_legitimate gov)

let test_governance_blocks_rogue () =
  let malicious = [| true; false; false; false |] in
  let engine, gov, slot = governance_setup ~malicious () in
  let result = ref None in
  Governance.propose gov ~proposer:0 (rogue_op slot) (fun d -> result := Some d);
  Engine.run engine;
  Alcotest.(check bool) "blocked" true (!result = Some Governance.Blocked);
  Alcotest.(check int) "rogue blocked counted" 1 (Governance.blocked_rogue gov);
  Alcotest.(check int) "nothing rogue executed" 0 (Governance.executed_rogue gov)

let test_governance_single_compromised_kernel_fails () =
  let engine = Engine.create () in
  let grid = Grid.create ~width:8 ~height:8 in
  let icap = Icap.create engine grid () in
  Icap.grant icap ~principal:100 ~region:(Region.make ~x:0 ~y:0 ~w:8 ~h:8);
  let slot =
    match Grid.place grid ~region:(Region.make ~x:0 ~y:0 ~w:2 ~h:2) ~variant:1 ~owner:1 with
    | Ok id -> id
    | Error e -> Alcotest.failf "setup place failed: %s" e
  in
  let gov = Governance.single_kernel engine icap ~compromised:true ~governance_principal:100 () in
  let result = ref None in
  Governance.propose gov ~proposer:0 (rogue_op slot) (fun d -> result := Some d);
  Engine.run engine;
  (match !result with
   | Some (Governance.Executed _) -> ()
   | _ -> Alcotest.fail "compromised single kernel executes the hijack");
  Alcotest.(check int) "rogue executed" 1 (Governance.executed_rogue gov);
  (* the hijacker's variant is now in the victim's region *)
  match Grid.slots grid with
  | [ s ] -> Alcotest.(check int) "variant hijacked" 9 s.Grid.variant
  | _ -> Alcotest.fail "expected one slot"

let test_governance_minority_malicious_harmless () =
  (* f=1 malicious out of 4 kernels with threshold 3: legitimate ops pass,
     rogue ops fail. *)
  let malicious = [| false; true; false; false |] in
  let engine, gov, slot = governance_setup ~malicious () in
  let r1 = ref None and r2 = ref None in
  Governance.propose gov ~proposer:1 (rogue_op slot) (fun d -> r1 := Some d);
  Engine.run engine;
  Governance.propose gov ~proposer:0 (legit_op slot) (fun d -> r2 := Some d);
  Engine.run engine;
  Alcotest.(check bool) "rogue blocked" true (!r1 = Some Governance.Blocked);
  (match !r2 with
   | Some (Governance.Executed _) -> ()
   | _ -> Alcotest.fail "legitimate op should still execute")

let test_governance_majority_malicious_defeated () =
  (* Beyond the assumed f: 3 of 4 kernels malicious defeats the vote. *)
  let malicious = [| true; true; true; false |] in
  let engine, gov, slot = governance_setup ~malicious () in
  let result = ref None in
  Governance.propose gov ~proposer:0 (rogue_op slot) (fun d -> result := Some d);
  Engine.run engine;
  (match !result with
   | Some (Governance.Executed _) -> ()
   | _ -> Alcotest.fail "assumption violated: rogue executes");
  Alcotest.(check int) "counted as rogue execution" 1 (Governance.executed_rogue gov)

let test_governance_corrupt_bitstream_blocked_by_honest () =
  let engine, gov, slot = governance_setup () in
  let op =
    { Governance.slot; bitstream = Bitstream.corrupt (Bitstream.make ~variant:2 ~w:2 ~h:2); requestor = 1 }
  in
  let result = ref None in
  Governance.propose gov ~proposer:0 op (fun d -> result := Some d);
  Engine.run engine;
  Alcotest.(check bool) "honest kernels reject bad checksum" true (!result = Some Governance.Blocked)

let test_governance_vote_latency () =
  let engine, gov, slot = governance_setup () in
  let done_at = ref 0 in
  Governance.propose gov ~proposer:0 (legit_op slot) (fun _ -> done_at := Engine.now engine);
  Engine.run engine;
  Alcotest.(check bool) "voting + reconfiguration takes time" true (!done_at > 50)

let () =
  Alcotest.run "resoc_resilience"
    [
      ( "diversity",
        [
          Alcotest.test_case "same" `Quick test_diversity_same;
          Alcotest.test_case "round robin" `Quick test_diversity_round_robin;
          Alcotest.test_case "max diversity distinct" `Quick test_diversity_max_distinct;
          Alcotest.test_case "rejuvenation changes variant" `Quick test_diversity_rejuvenation_changes_variant;
          Alcotest.test_case "risk ordering" `Quick test_diversity_risk_ordering;
        ] );
      ( "rejuvenation",
        [
          Alcotest.test_case "round robin staggered" `Quick test_rejuvenation_round_robin_staggered;
          Alcotest.test_case "at most one down" `Quick test_rejuvenation_at_most_one_down;
          Alcotest.test_case "downtime respected" `Quick test_rejuvenation_downtime_respected;
          Alcotest.test_case "variant hook" `Quick test_rejuvenation_variant_hook;
          Alcotest.test_case "reactive" `Quick test_rejuvenation_reactive;
          Alcotest.test_case "stop" `Quick test_rejuvenation_stop;
          Alcotest.test_case "policy validation" `Quick test_rejuvenation_validates_policy;
        ] );
      ( "threat",
        [
          Alcotest.test_case "accumulates" `Quick test_threat_accumulates;
          Alcotest.test_case "decays" `Quick test_threat_decays;
          Alcotest.test_case "reset" `Quick test_threat_reset;
        ] );
      ( "adaptation",
        [
          Alcotest.test_case "raises under threat" `Quick test_adaptation_raises_under_threat;
          Alcotest.test_case "lowers when calm" `Quick test_adaptation_lowers_when_calm;
          Alcotest.test_case "respects f_max" `Quick test_adaptation_respects_f_max;
          Alcotest.test_case "cooldown limits rate" `Quick test_adaptation_cooldown_limits_rate;
          Alcotest.test_case "hysteresis validated" `Quick test_adaptation_hysteresis_validated;
        ] );
      ( "governance",
        [
          Alcotest.test_case "executes legitimate" `Quick test_governance_executes_legitimate;
          Alcotest.test_case "blocks rogue" `Quick test_governance_blocks_rogue;
          Alcotest.test_case "single compromised kernel fails" `Quick
            test_governance_single_compromised_kernel_fails;
          Alcotest.test_case "minority malicious harmless" `Quick test_governance_minority_malicious_harmless;
          Alcotest.test_case "majority malicious defeated" `Quick test_governance_majority_malicious_defeated;
          Alcotest.test_case "corrupt bitstream blocked" `Quick test_governance_corrupt_bitstream_blocked_by_honest;
          Alcotest.test_case "vote latency" `Quick test_governance_vote_latency;
        ] );
    ]
