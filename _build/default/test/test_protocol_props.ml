(* Property-based protocol safety: for randomized fault schedules within the
   declared budget, every protocol must stay live (all submitted requests
   complete) and safe (surviving honest replicas agree on the accumulator
   state, which is order-insensitive and therefore a valid cross-view
   oracle). *)

open Resoc_repl
module Engine = Resoc_des.Engine
module Behavior = Resoc_fault.Behavior
module Group = Resoc_core.Group

let horizon = 400_000

(* A fault schedule: which replica misbehaves, how, and when. *)
type fault = No_fault | Crash of { replica : int; at : int } | Byz of { replica : int; kind : int }

let fault_gen ~n =
  QCheck.Gen.(
    frequency
      [
        (1, return No_fault);
        ( 3,
          map2
            (fun replica at -> Crash { replica; at })
            (int_bound (n - 1))
            (int_bound 50_000) );
        (2, map2 (fun replica kind -> Byz { replica; kind }) (int_bound (n - 1)) (int_bound 2));
      ])

let behaviors_of_fault ~n fault =
  let b = Array.make n Behavior.honest in
  (match fault with
   | No_fault -> ()
   | Crash { replica; at } -> b.(replica) <- Behavior.crash_at at
   | Byz { replica; kind } ->
     let strategy =
       match kind with
       | 0 -> Behavior.Silent
       | 1 -> Behavior.Equivocate
       | _ -> Behavior.Corrupt_execution
     in
     b.(replica) <- Behavior.byzantine strategy);
  b

let faulty_replica = function
  | No_fault -> None
  | Crash { replica; _ } | Byz { replica; _ } -> Some replica

let print_fault = function
  | No_fault -> "none"
  | Crash { replica; at } -> Printf.sprintf "crash r%d@%d" replica at
  | Byz { replica; kind } -> Printf.sprintf "byz r%d kind %d" replica kind

(* Run a protocol group under the fault and check liveness + agreement. *)
let check_kind kind ~byz_ok (fault, n_requests) =
  let spec = { Group.default_spec with kind; f = 1; n_clients = 1 } in
  let n = Group.n_replicas_of spec in
  (match fault with
   | Byz _ when not byz_ok -> true  (* out of this protocol's fault model *)
   | _ ->
     let engine = Engine.create () in
     let behaviors = behaviors_of_fault ~n fault in
     let spec = { spec with Group.behaviors = Some behaviors } in
     let group = Group.build engine (Group.Hub { latency = 5 }) spec in
     for i = 1 to n_requests do
       group.Group.submit ~client:0 ~payload:(Int64.of_int i)
     done;
     Engine.run ~until:horizon engine;
     let s = group.Group.stats () in
     let live = s.Resoc_repl.Stats.completed = n_requests in
     let skip = faulty_replica fault in
     let honest =
       List.filter (fun r -> Some r <> skip) (List.init n Fun.id)
     in
     let states = List.map (fun replica -> group.Group.replica_state ~replica) honest in
     let agree =
       match states with
       | [] -> true
       | first :: rest -> List.for_all (Int64.equal first) rest
     in
     if not (live && agree) then
       QCheck.Test.fail_reportf "fault=%s requests=%d live=%b agree=%b states=%s"
         (print_fault fault) n_requests live agree
         (String.concat "," (List.map Int64.to_string states))
     else true)

let arbitrary_case ~n =
  QCheck.make
    ~print:(fun (fault, k) -> Printf.sprintf "(%s, %d requests)" (print_fault fault) k)
    QCheck.Gen.(pair (fault_gen ~n) (int_range 1 8))

let prop_pbft =
  QCheck.Test.make ~name:"pbft safe+live under random single fault" ~count:25
    (arbitrary_case ~n:4)
    (check_kind `Pbft ~byz_ok:true)

let prop_minbft =
  QCheck.Test.make ~name:"minbft safe+live under random single fault" ~count:25
    (arbitrary_case ~n:3)
    (check_kind `Minbft ~byz_ok:true)

let prop_a2m_bft =
  QCheck.Test.make ~name:"a2m-bft safe+live under random single fault" ~count:25
    (arbitrary_case ~n:3)
    (check_kind `A2m_bft ~byz_ok:true)

let prop_paxos =
  (* Crash model only: Byzantine draws are skipped. *)
  QCheck.Test.make ~name:"paxos safe+live under random crash" ~count:25 (arbitrary_case ~n:3)
    (check_kind `Paxos ~byz_ok:false)

(* Rejuvenation churn must never break agreement: random offline/online
   windows for one replica at a time. *)
let prop_rejuvenation_churn =
  QCheck.Test.make ~name:"minbft agreement under offline/online churn" ~count:20
    QCheck.(make ~print:(fun l -> String.concat ";" (List.map string_of_int l))
              Gen.(list_size (int_range 1 4) (int_range 1 80)))
    (fun windows ->
      let engine = Engine.create () in
      let config = { Minbft.default_config with f = 1; n_clients = 1 } in
      let fabric = Transport.hub engine ~n:4 () in
      let sys = Minbft.start engine fabric config () in
      (* Take replica (i mod 3) down for window*100 cycles, sequentially. *)
      let t = ref 1_000 in
      List.iteri
        (fun i window ->
          let replica = i mod 3 in
          let start = !t in
          let stop = start + (window * 100) in
          ignore (Engine.at engine ~time:start (fun () -> Minbft.set_offline sys ~replica));
          ignore (Engine.at engine ~time:stop (fun () -> Minbft.set_online sys ~replica));
          t := stop + 5_000)
        windows;
      Resoc_workload.Generator.periodic engine ~period:3_000 ~until:(!t + 20_000) ~n_clients:1
        ~submit:(fun ~client ~payload -> Minbft.submit sys ~client ~payload)
        ();
      Engine.run ~until:(!t + 200_000) engine;
      let s = Minbft.stats sys in
      let all_agree =
        let s0 = Minbft.replica_state sys ~replica:0 in
        Int64.equal s0 (Minbft.replica_state sys ~replica:1)
        && Int64.equal s0 (Minbft.replica_state sys ~replica:2)
      in
      s.Stats.completed = s.Stats.submitted && all_agree)

let () =
  Alcotest.run "resoc_protocol_props"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pbft; prop_minbft; prop_a2m_bft; prop_paxos; prop_rejuvenation_churn ] );
    ]
