(* Tests for the hardware extension modules: lockstep coupling, Razor timing
   speculation, and 3D multi-vendor stacking. *)

open Resoc_hw
module Rng = Resoc_des.Rng

(* --- Lockstep --- *)

let test_lockstep_cores () =
  Alcotest.(check int) "simplex" 1 (Lockstep.cores Lockstep.Simplex);
  Alcotest.(check int) "dmr" 2 (Lockstep.cores (Lockstep.Dmr { max_retries = 2 }));
  Alcotest.(check int) "tmr" 3 (Lockstep.cores Lockstep.Tmr)

let test_lockstep_no_faults_clean () =
  let rng = Rng.create 1L in
  List.iter
    (fun mode ->
      let s = Lockstep.run rng mode ~p_fault:0.0 ~steps:1000 () in
      Alcotest.(check int) "no silent" 0 s.Lockstep.silent_errors;
      Alcotest.(check int) "no detected" 0 s.Lockstep.detected_uncorrected;
      Alcotest.(check int) "one cycle per step" 1000 s.Lockstep.cycles)
    [ Lockstep.Simplex; Lockstep.Dmr { max_retries = 3 }; Lockstep.Tmr ]

let test_lockstep_simplex_silent () =
  let rng = Rng.create 2L in
  let s = Lockstep.run rng Lockstep.Simplex ~p_fault:0.05 ~steps:10_000 () in
  let rate = Lockstep.silent_error_rate s in
  Alcotest.(check bool) (Printf.sprintf "silent rate ~0.05 (%f)" rate) true
    (rate > 0.03 && rate < 0.07)

let test_lockstep_dmr_detects () =
  let rng = Rng.create 3L in
  let s = Lockstep.run rng (Lockstep.Dmr { max_retries = 5 }) ~p_fault:0.05 ~steps:10_000 () in
  (* Comparison converts nearly all errors into retries. *)
  Alcotest.(check bool) "almost no silent errors" true (Lockstep.silent_error_rate s < 0.001);
  Alcotest.(check bool) "paid in retries" true (s.Lockstep.retries > 100);
  Alcotest.(check bool) "throughput below simplex" true (Lockstep.throughput s < 1.0)

let test_lockstep_tmr_masks_cheaply () =
  let rng = Rng.create 4L in
  let dmr = Lockstep.run rng (Lockstep.Dmr { max_retries = 5 }) ~p_fault:0.05 ~steps:10_000 () in
  let tmr = Lockstep.run rng Lockstep.Tmr ~p_fault:0.05 ~steps:10_000 () in
  Alcotest.(check bool) "tmr masks single faults without retry" true
    (tmr.Lockstep.retries < dmr.Lockstep.retries);
  Alcotest.(check bool) "tmr throughput higher" true
    (Lockstep.throughput tmr > Lockstep.throughput dmr);
  Alcotest.(check bool) "tmr silent negligible" true (Lockstep.silent_error_rate tmr < 0.001)

let test_lockstep_identical_corruption_escapes () =
  (* With p_identical = 1, every double fault agrees on garbage: DMR cannot
     see it. *)
  let rng = Rng.create 5L in
  let s =
    Lockstep.run rng (Lockstep.Dmr { max_retries = 5 }) ~p_fault:0.3 ~p_identical:1.0
      ~steps:5_000 ()
  in
  Alcotest.(check bool) "common-mode corruption escapes" true (s.Lockstep.silent_errors > 100)

let test_lockstep_validates () =
  let rng = Rng.create 6L in
  Alcotest.check_raises "bad p" (Invalid_argument "Lockstep.run: p_fault out of range") (fun () ->
      ignore (Lockstep.run rng Lockstep.Simplex ~p_fault:1.5 ~steps:10 ()))

(* --- Razor --- *)

let test_razor_safe_voltage_clean () =
  let rng = Rng.create 7L in
  let r = Razor.run rng Razor.default_config ~vdd:1.0 ~razor:true ~ops:1000 in
  Alcotest.(check int) "no violations at v_safe" 0 r.Razor.detected;
  Alcotest.(check int) "one cycle per op" 1000 r.Razor.cycles

let test_razor_rate_monotone () =
  let c = Razor.default_config in
  Alcotest.(check (float 1e-9)) "zero at safe" 0.0 (Razor.violation_rate c ~vdd:1.0);
  Alcotest.(check bool) "rises as vdd drops" true
    (Razor.violation_rate c ~vdd:0.9 < Razor.violation_rate c ~vdd:0.8)

let test_razor_detects_where_baseline_corrupts () =
  let rng = Rng.create 8L in
  let vdd = 0.93 in
  let with_razor = Razor.run rng Razor.default_config ~vdd ~razor:true ~ops:20_000 in
  let without = Razor.run rng Razor.default_config ~vdd ~razor:false ~ops:20_000 in
  Alcotest.(check int) "razor lets nothing through" 0 with_razor.Razor.silent_errors;
  Alcotest.(check bool) "baseline corrupts silently" true (without.Razor.silent_errors > 50);
  Alcotest.(check bool) "razor pays cycles" true (with_razor.Razor.cycles > without.Razor.cycles)

let test_razor_low_voltage_saves_energy () =
  (* The Razor pitch: run below v_safe, absorb small penalties, spend less
     energy per op than the worst-case-safe baseline. *)
  let rng = Rng.create 9L in
  let safe = Razor.run rng Razor.default_config ~vdd:1.0 ~razor:true ~ops:20_000 in
  let scaled = Razor.run rng Razor.default_config ~vdd:0.93 ~razor:true ~ops:20_000 in
  Alcotest.(check bool)
    (Printf.sprintf "energy/op %f < %f" (Razor.energy_per_op scaled) (Razor.energy_per_op safe))
    true
    (Razor.energy_per_op scaled < Razor.energy_per_op safe);
  Alcotest.(check int) "still correct" 0 scaled.Razor.silent_errors

let test_razor_too_low_not_worth_it () =
  (* Deep under-volting drowns in penalties: throughput collapses. *)
  let rng = Rng.create 10L in
  let ok = Razor.run rng Razor.default_config ~vdd:0.95 ~razor:true ~ops:5_000 in
  let deep = Razor.run rng Razor.default_config ~vdd:0.80 ~razor:true ~ops:5_000 in
  Alcotest.(check bool) "throughput collapses" true (Razor.throughput deep < Razor.throughput ok)

(* --- Stack3d --- *)

let test_stack3d_single_vendor () =
  Alcotest.(check (float 1e-9)) "identity" 0.05 (Stack3d.p_single_vendor ~p_mal:0.05)

let test_stack3d_chain_grows () =
  let p1 = Stack3d.p_chain ~p_mal:0.05 ~layers:1 in
  let p4 = Stack3d.p_chain ~p_mal:0.05 ~layers:4 in
  Alcotest.(check (float 1e-9)) "one layer = single vendor" 0.05 p1;
  Alcotest.(check bool) "diversity without redundancy backfires" true (p4 > p1);
  Alcotest.(check (float 1e-9)) "closed form" (1.0 -. (0.95 ** 4.0)) p4

let test_stack3d_vote_shrinks () =
  let single = Stack3d.p_single_vendor ~p_mal:0.05 in
  let voted3 = Stack3d.p_redundant_vote ~p_mal:0.05 ~m:3 in
  let voted5 = Stack3d.p_redundant_vote ~p_mal:0.05 ~m:5 in
  Alcotest.(check bool) "3-vote beats single vendor" true (voted3 < single);
  Alcotest.(check bool) "5-vote beats 3-vote" true (voted5 < voted3)

let test_stack3d_vote_formula () =
  (* m=3: P(>=2 of 3) = 3p^2(1-p) + p^3 *)
  let p = 0.1 in
  let expected = (3.0 *. p *. p *. (1.0 -. p)) +. (p *. p *. p) in
  Alcotest.(check (float 1e-12)) "binomial tail" expected (Stack3d.p_redundant_vote ~p_mal:p ~m:3)

let test_stack3d_mc_matches_analytic () =
  let rng = Rng.create 11L in
  let analytic = Stack3d.p_redundant_vote ~p_mal:0.2 ~m:5 in
  let mc = Stack3d.mc_redundant_vote rng ~p_mal:0.2 ~m:5 ~trials:100_000 in
  Alcotest.(check bool)
    (Printf.sprintf "mc %f vs analytic %f" mc analytic)
    true
    (Float.abs (mc -. analytic) < 0.005)

let test_stack3d_chain_voted () =
  (* A 4-function stack with per-function 3-vote redundancy beats both the
     plain 4-layer chain and (for small p) the single-vendor monolith. *)
  let p_mal = 0.05 in
  let voted = Stack3d.p_chain_voted ~p_mal ~layers:4 ~m:3 in
  Alcotest.(check bool) "beats plain chain" true (voted < Stack3d.p_chain ~p_mal ~layers:4);
  Alcotest.(check bool) "beats single vendor" true (voted < Stack3d.p_single_vendor ~p_mal);
  Alcotest.(check (float 1e-12)) "closed form"
    (1.0 -. ((1.0 -. Stack3d.p_redundant_vote ~p_mal ~m:3) ** 4.0))
    voted

let test_stack3d_validates () =
  Alcotest.check_raises "even m"
    (Invalid_argument "Stack3d.p_redundant_vote: m must be odd and positive") (fun () ->
      ignore (Stack3d.p_redundant_vote ~p_mal:0.1 ~m:4))

(* --- Sinw --- *)

let test_sinw_validation () =
  Alcotest.check_raises "bad threshold" (Invalid_argument "Sinw.make: need 1 <= threshold <= wires")
    (fun () -> ignore (Sinw.make ~wires:3 ~threshold:4))

let test_sinw_single_wire_baseline () =
  let t = Sinw.make ~wires:1 ~threshold:1 in
  Alcotest.(check (float 1e-12)) "identity" 0.9 (Sinw.p_functional t ~p_wire_defect:0.1);
  Alcotest.(check (float 1e-12)) "mttf factor 1" 1.0 (Sinw.mttf_factor t)

let test_sinw_redundancy_raises_yield () =
  let t = Sinw.make ~wires:4 ~threshold:1 in
  Alcotest.(check bool) "better than single wire" true
    (Sinw.p_functional t ~p_wire_defect:0.1 > 0.9);
  (* needs only 1 of 4: fails only if all four are defective *)
  Alcotest.(check (float 1e-12)) "closed form" (1.0 -. (0.1 ** 4.0))
    (Sinw.p_functional t ~p_wire_defect:0.1)

let test_sinw_mttf_factor () =
  (* 4 wires, threshold 1: 1/4 + 1/3 + 1/2 + 1 = 25/12. *)
  let t = Sinw.make ~wires:4 ~threshold:1 in
  Alcotest.(check (float 1e-9)) "harmonic sum" (25.0 /. 12.0) (Sinw.mttf_factor t)

let test_sinw_sampled_lifetime_matches_factor () =
  let t = Sinw.make ~wires:4 ~threshold:1 in
  let rng = Rng.create 21L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sinw.sample_lifetime rng t ~wire_mean:100.0
  done;
  let mean = !sum /. float_of_int n in
  let expected = 100.0 *. Sinw.mttf_factor t in
  Alcotest.(check bool)
    (Printf.sprintf "sampled %f vs analytic %f" mean expected)
    true
    (Float.abs (mean -. expected) < 3.0)

let test_sinw_gate_uplift () =
  let t = Sinw.make ~wires:4 ~threshold:2 in
  let single, arrayed = Sinw.gate_reliability_uplift t ~p_wire_defect:0.05 ~transistors_per_gate:4 in
  Alcotest.(check bool) "uplift" true (arrayed > single)

(* --- NoC YX fallback --- *)

module Mesh = Resoc_noc.Mesh
module Network = Resoc_noc.Network
module Engine = Resoc_des.Engine

let test_yx_route_shape () =
  let m = Mesh.create ~width:4 ~height:4 in
  (* 1=(1,0) -> 14=(2,3): Y first down to (1,3)=13, then X to 14. *)
  Alcotest.(check (list int)) "y then x" [ 1; 5; 9; 13; 14 ] (Mesh.yx_route m ~src:1 ~dst:14)

let test_yx_route_same_length () =
  let m = Mesh.create ~width:5 ~height:5 in
  for src = 0 to 24 do
    for dst = 0 to 24 do
      Alcotest.(check int)
        (Printf.sprintf "%d->%d" src dst)
        (List.length (Mesh.xy_route m ~src ~dst))
        (List.length (Mesh.yx_route m ~src ~dst))
    done
  done

let test_fallback_survives_xy_break () =
  let engine = Engine.create () in
  let mesh = Mesh.create ~width:3 ~height:3 in
  let config = { Network.default_config with routing = Network.Xy_with_yx_fallback } in
  let net = Network.create engine mesh config in
  let received = ref 0 in
  Network.attach net ~node:8 (fun ~src:_ _ -> incr received);
  (* Break the XY path 0->8 (x first: 0-1-2-5-8) at its first link. *)
  Mesh.fail_link mesh { Mesh.src = 0; dst = 1 };
  Network.send net ~src:0 ~dst:8 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "delivered via YX" 1 !received;
  Alcotest.(check int) "nothing dropped" 0 (Network.dropped net)

let test_xy_only_drops_on_break () =
  let engine = Engine.create () in
  let mesh = Mesh.create ~width:3 ~height:3 in
  let net = Network.create engine mesh Network.default_config in
  let received = ref 0 in
  Network.attach net ~node:8 (fun ~src:_ _ -> incr received);
  Mesh.fail_link mesh { Mesh.src = 0; dst = 1 };
  Network.send net ~src:0 ~dst:8 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "dropped without fallback" 0 !received

let test_fallback_doomed_when_both_broken () =
  let engine = Engine.create () in
  let mesh = Mesh.create ~width:3 ~height:3 in
  let config = { Network.default_config with routing = Network.Xy_with_yx_fallback } in
  let net = Network.create engine mesh config in
  let received = ref 0 in
  Network.attach net ~node:8 (fun ~src:_ _ -> incr received);
  Mesh.fail_link mesh { Mesh.src = 0; dst = 1 };
  Mesh.fail_link mesh { Mesh.src = 0; dst = 3 };
  Network.send net ~src:0 ~dst:8 ~bytes_:16 ();
  Engine.run engine;
  Alcotest.(check int) "both paths dead" 0 !received;
  Alcotest.(check int) "dropped" 1 (Network.dropped net)

let prop_yx_valid =
  QCheck.Test.make ~name:"yx route moves by adjacent hops" ~count:200
    QCheck.(pair (int_bound 35) (int_bound 35))
    (fun (src, dst) ->
      let m = Mesh.create ~width:6 ~height:6 in
      let route = Mesh.yx_route m ~src ~dst in
      let rec ok = function
        | a :: (b :: _ as rest) -> Mesh.manhattan m a b = 1 && ok rest
        | [ _ ] | [] -> true
      in
      ok route && List.hd route = src && List.hd (List.rev route) = dst)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "resoc_hw_ext"
    [
      ( "lockstep",
        [
          Alcotest.test_case "cores" `Quick test_lockstep_cores;
          Alcotest.test_case "no faults clean" `Quick test_lockstep_no_faults_clean;
          Alcotest.test_case "simplex silent" `Quick test_lockstep_simplex_silent;
          Alcotest.test_case "dmr detects" `Quick test_lockstep_dmr_detects;
          Alcotest.test_case "tmr masks cheaply" `Quick test_lockstep_tmr_masks_cheaply;
          Alcotest.test_case "identical corruption escapes" `Quick test_lockstep_identical_corruption_escapes;
          Alcotest.test_case "validates" `Quick test_lockstep_validates;
        ] );
      ( "razor",
        [
          Alcotest.test_case "safe voltage clean" `Quick test_razor_safe_voltage_clean;
          Alcotest.test_case "rate monotone" `Quick test_razor_rate_monotone;
          Alcotest.test_case "detects where baseline corrupts" `Quick test_razor_detects_where_baseline_corrupts;
          Alcotest.test_case "low voltage saves energy" `Quick test_razor_low_voltage_saves_energy;
          Alcotest.test_case "too low not worth it" `Quick test_razor_too_low_not_worth_it;
        ] );
      ( "stack3d",
        [
          Alcotest.test_case "single vendor" `Quick test_stack3d_single_vendor;
          Alcotest.test_case "chain grows" `Quick test_stack3d_chain_grows;
          Alcotest.test_case "vote shrinks" `Quick test_stack3d_vote_shrinks;
          Alcotest.test_case "vote formula" `Quick test_stack3d_vote_formula;
          Alcotest.test_case "mc matches analytic" `Slow test_stack3d_mc_matches_analytic;
          Alcotest.test_case "chain voted" `Quick test_stack3d_chain_voted;
          Alcotest.test_case "validates" `Quick test_stack3d_validates;
        ] );
      ( "sinw",
        [
          Alcotest.test_case "validation" `Quick test_sinw_validation;
          Alcotest.test_case "single wire baseline" `Quick test_sinw_single_wire_baseline;
          Alcotest.test_case "redundancy raises yield" `Quick test_sinw_redundancy_raises_yield;
          Alcotest.test_case "mttf factor" `Quick test_sinw_mttf_factor;
          Alcotest.test_case "sampled lifetime" `Slow test_sinw_sampled_lifetime_matches_factor;
          Alcotest.test_case "gate uplift" `Quick test_sinw_gate_uplift;
        ] );
      ( "noc-routing",
        [
          Alcotest.test_case "yx route shape" `Quick test_yx_route_shape;
          Alcotest.test_case "yx same length" `Quick test_yx_route_same_length;
          Alcotest.test_case "fallback survives xy break" `Quick test_fallback_survives_xy_break;
          Alcotest.test_case "xy drops on break" `Quick test_xy_only_drops_on_break;
          Alcotest.test_case "doomed when both broken" `Quick test_fallback_doomed_when_both_broken;
        ] );
      qsuite "noc-routing-prop" [ prop_yx_valid ];
    ]
