(* Experiment harnesses regenerating the paper-style tables E1-E9 and F1.
   The paper (DSN'23 Disrupt) has no numeric tables of its own; each table
   here quantifies one concrete claim, cited in DESIGN.md section 3. *)

module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Histogram = Resoc_des.Metrics.Histogram
module Circuit = Resoc_hw.Circuit
module Redundancy = Resoc_hw.Redundancy
module Register = Resoc_hw.Register
module Complexity = Resoc_hw.Complexity
module Usig = Resoc_hybrid.Usig
module Behavior = Resoc_fault.Behavior
module Seu = Resoc_fault.Seu
module Apt = Resoc_fault.Apt
module Common_mode = Resoc_fault.Common_mode
module Region = Resoc_fabric.Region
module Grid = Resoc_fabric.Grid
module Icap = Resoc_fabric.Icap
module Bitstream = Resoc_fabric.Bitstream
module Transport = Resoc_repl.Transport
module Stats = Resoc_repl.Stats
module Minbft = Resoc_repl.Minbft
module Diversity = Resoc_resilience.Diversity
module Rejuvenation = Resoc_resilience.Rejuvenation
module Threat = Resoc_resilience.Threat
module Adaptation = Resoc_resilience.Adaptation
module Governance = Resoc_resilience.Governance
module Soc = Resoc_core.Soc
module Group = Resoc_core.Group
module Resilient_system = Resoc_core.Resilient_system
module Generator = Resoc_workload.Generator

module Campaign = Resoc_campaign.Campaign
module Cstats = Resoc_campaign.Stats
module Emit = Resoc_campaign.Emit
module Check = Resoc_check.Check
module Inject = Resoc_check.Inject
module Replay = Resoc_check.Replay

let header title claim =
  Printf.printf "\n=== %s ===\n%s\n\n" title claim

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Campaign plumbing: every multi-seed experiment goes through the     *)
(* resoc_campaign runner. Replicate seeds come from the SplitMix64     *)
(* seed tree under one root seed, so [--seeds N] scales every          *)
(* experiment uniformly and aggregates are bit-identical regardless of *)
(* the worker count.                                                   *)
(* ------------------------------------------------------------------ *)

type mcast_mode =
  | Mcast_off  (** Default: every fan-out is per-destination unicast. *)
  | Mcast_fabric
      (** Arm the transport's multicast (NoC trees / hub loop) but leave
          every protocol's [multicast] flag off — nothing routes through
          it, so campaign outputs must stay byte-identical to [Mcast_off].
          The determinism gate diffs exactly this. *)
  | Mcast_full  (** Fabric multicast armed AND protocol fan-outs use it. *)

type batch_mode =
  | Batch_off  (** Default: one agreement instance per client request. *)
  | Batch_armed
      (** Thread a present-but-inactive batching config (max_batch 1,
          window 0) through the E2/E3 protocol configs. No batcher is
          created, so campaign outputs must stay byte-identical to
          [Batch_off] — the determinism gate diffs exactly this. *)
  | Batch_full  (** Real batching: window 50, max_batch 8, pipeline depth 4. *)

type run_config = {
  replicates : int;
  jobs : int;
  json_dir : string option;  (* None disables BENCH_<id>.json emission *)
  csv : bool;
  root_seed : int64;
  progress : bool;
  check : bool;  (* reset Resoc_check state per replicate; count failures *)
  shrink : bool;  (* ddmin failed replicates into FAIL_*.json *)
  mcast : mcast_mode;  (* NoC/hub multicast gating for E2/E3 kernels *)
  batch : batch_mode;  (* request batching + pipelining for E2/E3 kernels *)
}

let run_config =
  ref
    {
      replicates = 16;
      jobs = 1;
      json_dir = Some ".";
      csv = false;
      root_seed = 0x5EEDL;
      progress = true;
      check = false;
      shrink = false;
      mcast = Mcast_off;
      batch = Batch_off;
    }

let mcast_armed () = (!run_config).mcast <> Mcast_off
let mcast_protocols () = (!run_config).mcast = Mcast_full

let batching_spec () =
  match (!run_config).batch with
  | Batch_off -> None
  | Batch_armed ->
    Some { Resoc_repl.Types.window_cycles = 0; max_batch = 1; pipeline_depth = 1 }
  | Batch_full ->
    Some { Resoc_repl.Types.window_cycles = 50; max_batch = 8; pipeline_depth = 4 }

let batch_label () =
  match (!run_config).batch with
  | Batch_off -> "off"
  | Batch_armed -> "armed"
  | Batch_full -> "w50/b8/d4"

(* When --replay FILE targets a campaign, run_campaign re-executes just that
   one replicate under the recorded suppression mask and exits: 0 when the
   failure reproduces, 1 when it does not. *)
let replay_target : Replay.t option ref = ref None

(* Failed replicates across all checked campaigns this run (drives exit 1). *)
let total_failures = ref 0

let replay_campaign (rt : Replay.t) cells =
  let cell =
    match List.find_opt (fun (c : Campaign.cell) -> c.Campaign.id = rt.cell) cells with
    | Some c -> c
    | None ->
      Printf.eprintf "replay: campaign %s has no cell %s\n" rt.experiment rt.cell;
      exit 2
  in
  Check.begin_replicate ();
  Inject.begin_replicate ();
  if !Resoc_obs.Obs.metrics_on then Resoc_obs.Obs.begin_replicate ();
  Inject.set_mask ~total:rt.total_events rt.keep;
  match cell.Campaign.run ~seed:rt.seed with
  | _ ->
    Printf.printf "replay: %s/%s seed %Ld ran clean — failure NOT reproduced\n" rt.experiment
      rt.cell rt.seed;
    exit 1
  | exception e ->
    Printf.printf "replay: %s/%s seed %Ld reproduced: %s\n" rt.experiment rt.cell rt.seed
      (Printexc.to_string e);
    exit 0

let run_campaign ~id ~title cells =
  let rc = !run_config in
  (match !replay_target with
  | Some rt when rt.Replay.experiment = id -> replay_campaign rt cells
  | Some _ | None -> ());
  let config =
    {
      Campaign.root_seed = rc.root_seed;
      replicates = rc.replicates;
      jobs = rc.jobs;
      progress = rc.progress;
      check = rc.check;
      shrink = rc.shrink;
      fail_dir = rc.json_dir;
    }
  in
  let result = Campaign.run ~config ~id ~title cells in
  if rc.check then
    List.iter
      (fun agg -> total_failures := !total_failures + Campaign.failures agg)
      result.Campaign.cells;
  (match rc.json_dir with
  | Some dir ->
    ignore (Emit.json_file ~dir result);
    if rc.csv then ignore (Emit.csv_file ~dir result)
  | None -> ());
  result

(* ------------------------------------------------------------------ *)
(* E1: gate-level redundancy (Fig. 1 bottom layer; refs [13]-[18])     *)
(* ------------------------------------------------------------------ *)

let e1_gate_redundancy () =
  header "E1  Gate-level redundancy"
    "Claim (SI, refs [13]-[18]): replicated gates mask faults; TMR follows\n\
     R_TMR = 3R^2 - 2R^3 (helps only when R > 1/2), and the voter itself is\n\
     a fallible circuit, so trivial modules are voter-limited.";
  let rng = Rng.create 1001L in
  let module_circuit = Circuit.random_logic rng ~n_inputs:8 ~n_gates:400 in
  let tmr = Circuit.replicate_with_voter module_circuit 3 in
  let nmr5 = Circuit.replicate_with_voter module_circuit 5 in
  let trials = 4000 in
  row "%-10s %-10s %-10s %-12s %-10s %-10s\n" "p_gate" "simplex" "tmr" "tmr-analytic" "nmr5"
    "winner";
  List.iter
    (fun p_gate ->
      let simplex = Redundancy.mc_circuit_correct rng module_circuit ~trials ~p_gate in
      let tmr_ok = Redundancy.mc_circuit_correct rng tmr ~trials ~p_gate in
      let nmr5_ok = Redundancy.mc_circuit_correct rng nmr5 ~trials ~p_gate in
      let analytic = Redundancy.r_tmr simplex in
      let winner =
        if nmr5_ok >= tmr_ok && nmr5_ok >= simplex then "nmr5"
        else if tmr_ok >= simplex then "tmr"
        else "simplex"
      in
      row "%-10.4f %-10.4f %-10.4f %-12.4f %-10.4f %-10s\n" p_gate simplex tmr_ok analytic nmr5_ok
        winner)
    [ 0.0001; 0.0005; 0.001; 0.002; 0.005; 0.01; 0.02 ];
  (* Voter-limited regime: a near-trivial module. *)
  let buf = Circuit.build ~n_inputs:1 [| Circuit.Input 0; Circuit.Buf 0 |] ~outputs:[| 1 |] in
  let tmr_buf = Circuit.replicate_with_voter buf 3 in
  let p_gate = 0.01 in
  let simplex = Redundancy.mc_circuit_correct rng buf ~trials:20000 ~p_gate in
  let redundant = Redundancy.mc_circuit_correct rng tmr_buf ~trials:20000 ~p_gate in
  row "\nvoter-limited check (1-gate module, p=%.2f): simplex %.4f vs tmr %.4f -> %s\n" p_gate
    simplex redundant
    (if redundant < simplex then "TMR HURTS (as predicted)" else "tmr wins");
  row "crossover check: r_tmr(0.3)=%.3f < 0.3; r_tmr(0.9)=%.3f > 0.9\n" (Redundancy.r_tmr 0.3)
    (Redundancy.r_tmr 0.9);
  (* One level below the gates: SiNW nanowire arrays (SI, ref [19]). *)
  row "\nSiNW transistor redundancy (ref [19]): yield and lifetime vs wires\n";
  row "%-12s %-18s %-14s\n" "wires(>=1)" "yield@5pc-defect" "MTTF factor";
  List.iter
    (fun wires ->
      let t = Resoc_hw.Sinw.make ~wires ~threshold:1 in
      row "%-12d %-18.5f %-14.3f\n" wires
        (Resoc_hw.Sinw.p_functional t ~p_wire_defect:0.05)
        (Resoc_hw.Sinw.mttf_factor t))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* E2: ECC on the USIG counter register (SIII)                         *)
(* ------------------------------------------------------------------ *)

let run_minbft_under_seu ~protection ~seu_rate ~seed =
  let engine = Engine.create ~seed () in
  let config =
    {
      Minbft.default_config with
      f = 1;
      n_clients = 2;
      usig_protection = protection;
      multicast = mcast_protocols ();
      batching = batching_spec ();
    }
  in
  let n = Minbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 2) ~multicast:(mcast_armed ()) () in
  let sys = Minbft.start engine fabric config () in
  let registers =
    Array.init n (fun replica -> Usig.counter_register (Minbft.usig sys ~replica))
  in
  let seu =
    Seu.start engine (Rng.create (Int64.add seed 7L)) ~rate_per_bit_cycle:seu_rate registers
  in
  (* Deployed SECDED is always paired with background scrubbing so single
     flips cannot accumulate into uncorrectable pairs. *)
  Engine.every engine ~period:250 (fun () -> Array.iter Register.scrub registers);
  let horizon = 250_000 in
  Generator.periodic engine ~period:2_000 ~until:horizon ~n_clients:2
    ~submit:(fun ~client ~payload -> Minbft.submit sys ~client ~payload)
    ();
  Engine.run ~until:horizon engine;
  let s = Minbft.stats sys in
  let avail =
    if s.Stats.submitted = 0 then 1.0
    else float_of_int s.Stats.completed /. float_of_int s.Stats.submitted
  in
  ( avail,
    s.Stats.view_changes,
    Minbft.usig_gap_drops sys,
    Seu.injected seu,
    Histogram.percentile s.Stats.latency 99.0 )

let e2_usig_ecc () =
  header "E2  USIG counter protection: plain vs parity vs SECDED"
    "Claim (SIII): a bitflip in a plain USIG counter register is catastrophic\n\
     for consensus (silent desync -> stalls/view changes); ECC registers\n\
     tolerate it at a known extra circuit cost. Per-replicate means ±95% CI.";
  let protections =
    [ ("plain", Register.Plain); ("parity", Register.Parity); ("secded", Register.Secded) ]
  in
  let specs =
    List.concat_map
      (fun seu_rate ->
        List.map (fun (label, protection) -> (seu_rate, label, protection)) protections)
      [ 0.0; 1.0e-7; 1.0e-6; 4.0e-6 ]
  in
  let cells =
    List.map
      (fun (seu_rate, label, protection) ->
        Campaign.cell
          ~params:
            [ ("seu_rate", Printf.sprintf "%.0e" seu_rate); ("protection", label) ]
          (Printf.sprintf "%.0e/%s" seu_rate label)
          (fun ~seed ->
            let avail, vcs, gaps, upsets, p99 =
              run_minbft_under_seu ~protection ~seu_rate ~seed
            in
            [
              ("avail", avail);
              ("view_changes", float_of_int vcs);
              ("gaps", float_of_int gaps);
              ("upsets", float_of_int upsets);
              ("lat_p99", p99);
            ]))
      specs
  in
  let result = run_campaign ~id:"e2" ~title:"USIG counter protection under SEUs" cells in
  row "%-10s %-8s %-6s %-6s | %-15s %-12s %-8s %-8s %-8s\n" "SEU/bit/cy" "protect" "bits"
    "gates" "avail (95% CI)" "viewchg" "gaps" "upsets" "p99-max";
  List.iter2
    (fun (seu_rate, label, protection) agg ->
      let avail = Campaign.metric agg "avail" in
      let vcs = Campaign.metric agg "view_changes" in
      let gaps = Campaign.metric agg "gaps" in
      let ups = Campaign.metric agg "upsets" in
      let p99 = Campaign.metric agg "lat_p99" in
      row "%-10.0e %-8s %-6d %-6d | %.3f ±%.3f    %-12s %-8.0f %-8.0f %.0f\n" seu_rate label
        (Register.stored_bits (Register.create protection 0L))
        (Register.gate_cost protection)
        avail.Cstats.mean avail.Cstats.ci95 (Cstats.pp_mean_ci vcs) gaps.Cstats.mean
        ups.Cstats.mean p99.Cstats.max)
    specs result.Campaign.cells

(* ------------------------------------------------------------------ *)
(* E3: PBFT (3f+1) vs MinBFT (2f+1) on the NoC (SI, SII.A; refs [40]-[42]) *)
(* ------------------------------------------------------------------ *)

let run_group_workload kind ~f ~requests ~mesh =
  let w, h = mesh in
  let soc =
    Soc.create
      {
        Soc.default_config with
        mesh_width = w;
        mesh_height = h;
        seed = 77L;
        noc = { Soc.default_config.noc with Resoc_noc.Network.multicast = mcast_armed () };
      }
  in
  let spec =
    {
      Group.default_spec with
      kind;
      f;
      n_clients = 2;
      multicast = mcast_protocols ();
      batching = batching_spec ();
    }
  in
  let group = Group.build (Soc.engine soc) (Group.On_soc soc) spec in
  Generator.burst ~n_per_client:(requests / 2) ~n_clients:2 ~submit:group.Group.submit;
  Engine.run ~until:2_000_000 (Soc.engine soc);
  let s = group.Group.stats () in
  (group, s, Soc.noc_messages soc, Soc.noc_bytes soc)

let e3_pbft_vs_minbft () =
  header "E3  Hybrid-assisted BFT: 2f+1 (MinBFT/USIG) vs 3f+1 (PBFT)"
    "Claim (SI/SII.A, refs [40]-[42]): a trusted hybrid cuts replicas from\n\
     3f+1 to 2f+1 and removes one agreement phase: fewer cores, fewer\n\
     messages, lower latency for the same f.";
  row "%-3s %-9s %-9s %-10s %-10s %-10s %-10s %-10s %-10s\n" "f" "protocol" "replicas"
    "completed" "msgs/req" "bytes/req" "lat-mean" "lat-p99" "batch";
  List.iter
    (fun f ->
      List.iter
        (fun kind ->
          let requests = 20 in
          let mesh = if f >= 3 then (5, 4) else (4, 4) in
          let group, s, msgs, bytes = run_group_workload kind ~f ~requests ~mesh in
          let per_req v = if s.Stats.completed = 0 then 0.0 else float_of_int v /. float_of_int s.Stats.completed in
          row "%-3d %-9s %-9d %-10d %-10.1f %-10.1f %-10.0f %-10.0f %-10s\n" f
            group.Group.protocol group.Group.n_replicas s.Stats.completed (per_req msgs)
            (per_req bytes)
            (Histogram.mean s.Stats.latency)
            (Histogram.percentile s.Stats.latency 99.0)
            (batch_label ()))
        [ `Pbft; `Minbft; `A2m_bft ])
    [ 1; 2; 3 ];
  (* Equivocation contrast: the structural benefit of the USIG. *)
  let equivocation kind =
    let engine = Engine.create ~seed:5L () in
    match kind with
    | `Pbft ->
      let config = { Resoc_repl.Pbft.default_config with f = 1; n_clients = 1 } in
      let fabric = Transport.hub engine ~n:5 () in
      let behaviors = Array.make 4 Behavior.honest in
      behaviors.(0) <- Behavior.byzantine Behavior.Equivocate;
      let sys = Resoc_repl.Pbft.start engine fabric config ~behaviors () in
      for i = 1 to 10 do
        Resoc_repl.Pbft.submit sys ~client:0 ~payload:(Int64.of_int i)
      done;
      Engine.run ~until:1_000_000 engine;
      let s = Resoc_repl.Pbft.stats sys in
      (s.Stats.completed, s.Stats.view_changes)
    | `Minbft ->
      let config = { Minbft.default_config with f = 1; n_clients = 1 } in
      let fabric = Transport.hub engine ~n:4 () in
      let behaviors = Array.make 3 Behavior.honest in
      behaviors.(0) <- Behavior.byzantine Behavior.Equivocate;
      let sys = Minbft.start engine fabric config ~behaviors () in
      for i = 1 to 10 do
        Minbft.submit sys ~client:0 ~payload:(Int64.of_int i)
      done;
      Engine.run ~until:1_000_000 engine;
      let s = Minbft.stats sys in
      (s.Stats.completed, s.Stats.view_changes)
  in
  let p_done, p_vc = equivocation `Pbft in
  let m_done, m_vc = equivocation `Minbft in
  row "\nequivocating primary: pbft completed %d with %d view changes; minbft completed %d with %d\n"
    p_done p_vc m_done m_vc;
  row "(USIG makes equivocation structurally impossible: no view change needed)\n"

(* ------------------------------------------------------------------ *)
(* E4: passive vs active replication (SII.A)                           *)
(* ------------------------------------------------------------------ *)

let e4_passive_vs_active () =
  header "E4  Passive vs active replication under a primary crash"
    "Claim (SII.A): passive replication is cheap (one warm backup, one\n\
     update per op) but recovery is slow and client-visible; active\n\
     replication masks the fault seamlessly at higher message cost.";
  let horizon = 300_000 in
  let crash_t = 50_000 in
  row "%-15s %-9s %-10s %-10s %-8s %-10s %-10s %-10s %-10s\n" "protocol" "replicas" "completed"
    "submitted" "retx" "failovers" "msgs/req" "lat-p99" "lat-max";
  List.iter
    (fun kind ->
      let engine = Engine.create ~seed:42L () in
      let spec = { Group.default_spec with kind; f = 1; n_clients = 1; request_timeout = 3_000 } in
      let n = Group.n_replicas_of spec in
      let behaviors = Array.make n Behavior.honest in
      behaviors.(0) <- Behavior.crash_at crash_t;
      let spec = { spec with Group.behaviors = Some behaviors } in
      let group = Group.build engine (Group.Hub { latency = 5 }) spec in
      Generator.periodic engine ~period:1_000 ~until:(horizon - 50_000) ~n_clients:1
        ~submit:group.Group.submit ();
      Engine.run ~until:horizon engine;
      let s = group.Group.stats () in
      let msgs_per_req =
        if s.Stats.completed = 0 then 0.0
        else float_of_int (group.Group.messages ()) /. float_of_int s.Stats.completed
      in
      row "%-15s %-9d %-10d %-10d %-8d %-10d %-10.1f %-10.0f %-10.0f\n" group.Group.protocol
        group.Group.n_replicas s.Stats.completed s.Stats.submitted s.Stats.retransmissions
        s.Stats.view_changes msgs_per_req
        (Histogram.percentile s.Stats.latency 99.0)
        (Histogram.max s.Stats.latency))
    [ `Primary_backup; `Paxos; `Minbft; `Pbft ]

(* ------------------------------------------------------------------ *)
(* E5: diversity vs common-mode failures (SII.B)                       *)
(* ------------------------------------------------------------------ *)

let e5_diversity () =
  header "E5  Diversity vs common-mode vulnerabilities"
    "Claim (SII.B): active replication only helps while replicas fail\n\
     independently; one shared vulnerability defeats a monoculture group.\n\
     P(single vulnerability event defeats the f=1, n=4 group), mean ±95% CI:";
  let strategies =
    [
      ("monoculture", 4, Diversity.Same);
      ("2-variants", 2, Diversity.Round_robin);
      ("4-variants", 4, Diversity.Max_diversity);
      ("8-variants", 8, Diversity.Max_diversity);
    ]
  in
  let qs = [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5 ] in
  let trials = 4_000 in
  let specs = List.concat_map (fun q -> List.map (fun s -> (q, s)) strategies) qs in
  let cells =
    List.map
      (fun (q, (name, variants, strategy)) ->
        Campaign.cell
          ~params:[ ("q", Printf.sprintf "%.2f" q); ("strategy", name) ]
          (Printf.sprintf "q%.2f/%s" q name)
          (fun ~seed ->
            let rng = Rng.create seed in
            let pool = Common_mode.create ~n_variants:variants ~shared_prob:q in
            let d = Diversity.create ~pool strategy in
            let assignment = Diversity.initial_assignment d ~n_replicas:4 in
            [
              ( "p_compromise",
                Common_mode.p_group_compromise pool rng ~assignment ~f:1 ~trials );
            ]))
      specs
  in
  let result = run_campaign ~id:"e5" ~title:"Diversity vs common-mode vulnerabilities" cells in
  let tagged = List.combine specs result.Campaign.cells in
  row "%-8s %-18s %-18s %-18s %-18s\n" "q" "monoculture" "2 variants" "4 variants" "8 variants";
  List.iter
    (fun q ->
      let col name =
        let _, agg =
          List.find (fun ((q', (name', _, _)), _) -> q' = q && name' = name) tagged
        in
        Cstats.pp_mean_ci ~decimals:4 (Campaign.metric agg "p_compromise")
      in
      row "%-8.2f %-18s %-18s %-18s %-18s\n" q (col "monoculture") (col "2-variants")
        (col "4-variants") (col "8-variants"))
    qs

(* ------------------------------------------------------------------ *)
(* E6: rejuvenation vs APTs (SII.C; ref [51])                          *)
(* ------------------------------------------------------------------ *)

let e6_rejuvenation () =
  header "E6  Rejuvenation policies under an APT campaign"
    "Claim (SII.C, ref [51]): a fixed f erodes under persistent attack;\n\
     periodic rejuvenation restores it, DIVERSE rejuvenation invalidates\n\
     the adversary's exploit, and spatial relocation escapes fabric\n\
     backdoors. Time to safety loss (>f compromised), 600k-cycle horizon:";
  let horizon = 600_000 in
  let apt =
    {
      Resilient_system.mean_exploit_cycles = 40_000.0;
      exposure = 6_000;
      backdoor_delay = 80_000;
      detection_prob = 0.0;
      detection_delay = 1_000;
    }
  in
  let base seed =
    {
      Resilient_system.default_config with
      soc = { Soc.default_config with seed };
      group = { Group.default_spec with n_clients = 1 };
      apt = Some apt;
      n_variants = 8;
      shared_vuln_prob = 0.0;
      trojaned_frames = [ (0, 0) ];
      rejuvenation = None;
      diversity = Diversity.Same;
      relocate_on_rejuvenation = false;
    }
  in
  (* slow: per-replica cadence (3 x 4k = 12k) exceeds the 6k exposure window
     -> exploits land and dwell; fast: cadence (3 x 1.8k = 5.4k) beats the
     exposure window -> the exploit race is won outright. *)
  let slow = Some { Rejuvenation.period = 4_000; downtime = 300 } in
  let fast = Some { Rejuvenation.period = 1_800; downtime = 300 } in
  let variants =
    [
      ("none", (fun c -> c));
      ("slow/same", fun c -> { c with Resilient_system.rejuvenation = slow });
      ( "slow/diverse",
        fun c ->
          { c with Resilient_system.rejuvenation = slow; diversity = Diversity.Max_diversity } );
      ("fast/same", fun c -> { c with Resilient_system.rejuvenation = fast });
      ( "fast/diverse",
        fun c ->
          { c with Resilient_system.rejuvenation = fast; diversity = Diversity.Max_diversity } );
      ( "fast/div+relocate",
        fun c ->
          {
            c with
            Resilient_system.rejuvenation = fast;
            diversity = Diversity.Max_diversity;
            relocate_on_rejuvenation = true;
          } );
    ]
  in
  let cells =
    List.map
      (fun (name, tweak) ->
        Campaign.cell ~params:[ ("policy", name) ] name (fun ~seed ->
            let sys = Resilient_system.create (tweak (base seed)) in
            let r = Resilient_system.run sys ~horizon ~workload_period:5_000 in
            let metrics =
              [
                ( "survived",
                  match r.Resilient_system.failed_at with None -> 1.0 | Some _ -> 0.0 );
                ("compromises", float_of_int r.Resilient_system.compromises);
                ("peak_simult", float_of_int r.Resilient_system.compromised_peak);
                ("rejuvenations", float_of_int r.Resilient_system.rejuvenations);
              ]
            in
            match r.Resilient_system.failed_at with
            | Some t -> metrics @ [ ("failed_at", float_of_int t) ]
            | None -> metrics))
      variants
  in
  let result = run_campaign ~id:"e6" ~title:"Rejuvenation policies under an APT campaign" cells in
  row "%-18s %-18s %-10s %-15s %-12s %-14s\n" "policy" "survival (95% CI)" "fell@mean"
    "compromises" "peak-simult" "rejuvenations";
  List.iter
    (fun agg ->
      let surv = Campaign.fraction agg "survived" in
      let fell = Campaign.metric agg "failed_at" in
      let comps = Campaign.metric agg "compromises" in
      let peak = Campaign.metric agg "peak_simult" in
      let rejs = Campaign.metric agg "rejuvenations" in
      let fell_s = if fell.Cstats.n = 0 then "-" else Printf.sprintf "%.0f" fell.Cstats.mean in
      row "%-18s %-18s %-10s %-15s %-12.0f %-14s\n" agg.Campaign.cell_id
        (Cstats.pp_fraction surv) fell_s (Cstats.pp_mean_ci comps) peak.Cstats.max
        (Cstats.pp_mean_ci rejs))
    result.Campaign.cells

(* ------------------------------------------------------------------ *)
(* E7: threat-adaptive f (SII.D; refs [52]-[54])                       *)
(* ------------------------------------------------------------------ *)

(* Abstract compromise-level simulation: attacks arrive as a Poisson
   process whose rate surges mid-run; each lands on a random clean replica.
   Detected compromises (p=0.8) are cleaned by reactive rejuvenation after
   a delay. The system fails when more than the *current* f replicas are
   compromised at once. The adaptive controller grows/shrinks the group. *)
let e7_run ~adaptive ~static_f ~seed =
  let engine = Engine.create ~seed () in
  let rng = Rng.split (Engine.rng engine) in
  let horizon = 600_000 in
  let surge_start = 200_000 and surge_end = 400_000 in
  let ramp = 50_000 in
  let base_rate = 1.0 /. 60_000.0 and surge_rate = 1.0 /. 6_000.0 in
  let f = ref static_f in
  let n () = (2 * !f) + 1 in
  let max_n = 9 in
  let compromised = Array.make max_n false in
  let online = Array.make max_n true in
  let failed_at = ref None in
  let replica_cycles = ref 0 in
  let threat = Threat.create engine ~half_life:20_000 in
  let check_failure () =
    let c = ref 0 in
    for i = 0 to n () - 1 do
      if compromised.(i) then incr c
    done;
    if !c > !f && !failed_at = None then failed_at := Some (Engine.now engine)
  in
  let clean replica =
    compromised.(replica) <- false;
    online.(replica) <- false;
    ignore (Engine.schedule engine ~delay:1_000 (fun () -> online.(replica) <- true))
  in
  let rec attack () =
    let now = Engine.now engine in
    let rate =
      (* Campaigns escalate: the surge ramps up over [ramp] cycles. *)
      if now < surge_start || now >= surge_end then base_rate
      else if now < surge_start + ramp then
        base_rate
        +. ((surge_rate -. base_rate) *. float_of_int (now - surge_start) /. float_of_int ramp)
      else surge_rate
    in
    let delay = max 1 (int_of_float (Rng.exponential rng ~mean:(1.0 /. rate))) in
    ignore
      (Engine.schedule engine ~delay (fun () ->
           if Engine.now engine < horizon then begin
             let target = Rng.int rng (n ()) in
             if online.(target) && not compromised.(target) then begin
               compromised.(target) <- true;
               check_failure ();
               (* detection *)
               if Rng.bernoulli rng 0.8 then
                 ignore
                   (Engine.schedule engine ~delay:2_000 (fun () ->
                        Threat.report threat ();
                        clean target))
             end;
             attack ()
           end))
  in
  attack ();
  (* Proactive staggered rejuvenation sweeps one replica every 10k cycles,
     bounding the residence time of UNDETECTED compromises. *)
  let sweep = ref 0 in
  Engine.every engine ~period:10_000 (fun () ->
      let target = !sweep mod n () in
      sweep := !sweep + 1;
      if online.(target) then clean target);
  if adaptive then begin
    let policy =
      {
        Adaptation.f_min = 1;
        f_max = 4;
        raise_threshold = 1.2;
        lower_threshold = 0.2;
        eval_period = 1_000;
        cooldown = 4_000;
      }
    in
    ignore
      (Adaptation.start engine policy threat
         { Adaptation.current_f = (fun () -> !f); scale_to = (fun f' -> f := f') })
  end;
  Engine.every engine ~period:1_000 (fun () ->
      replica_cycles := !replica_cycles + (n () * 1_000);
      check_failure ());
  Engine.run ~until:horizon engine;
  (!failed_at, !replica_cycles, !f)

let e7_adaptation () =
  header "E7  Threat-adaptive fault budget"
    "Claim (SII.D, refs [52]-[54]): scaling f with the observed threat\n\
     survives surges that defeat a static small group, at a fraction of the\n\
     cost of constant over-provisioning. Attack surge in [200k,400k):";
  let cells =
    List.map
      (fun (name, adaptive, static_f) ->
        Campaign.cell ~params:[ ("configuration", name) ] name (fun ~seed ->
            let failed, rc, f_end = e7_run ~adaptive ~static_f ~seed in
            let metrics =
              [
                ("survived", match failed with None -> 1.0 | Some _ -> 0.0);
                ("replica_cycles_m", float_of_int rc /. 1.0e6);
                ("final_f", float_of_int f_end);
              ]
            in
            match failed with
            | Some t -> metrics @ [ ("failed_at", float_of_int t) ]
            | None -> metrics))
      [ ("static f=1", false, 1); ("static f=4", false, 4); ("adaptive 1..4", true, 1) ]
  in
  let result = run_campaign ~id:"e7" ~title:"Threat-adaptive fault budget" cells in
  row "%-14s %-18s %-20s %-10s\n" "configuration" "survival (95% CI)" "replica-cycles(M)"
    "final f";
  List.iter
    (fun agg ->
      let surv = Campaign.fraction agg "survived" in
      let cycles = Campaign.metric agg "replica_cycles_m" in
      let final_f = Campaign.metric agg "final_f" in
      row "%-14s %-18s %-20s %-10.1f\n" agg.Campaign.cell_id (Cstats.pp_fraction surv)
        (Cstats.pp_mean_ci cycles) final_f.Cstats.mean)
    result.Campaign.cells

(* ------------------------------------------------------------------ *)
(* E8: consensual reconfiguration (SII.E; ref [55])                    *)
(* ------------------------------------------------------------------ *)

let e8_reconfig_governance () =
  header "E8  Resilient reconfiguration: voted vs single-kernel ICAP control"
    "Claim (SII.E, ref [55]): privilege change must be consensual — a\n\
     quorum of kernel replicas validates each reconfiguration; a single\n\
     (compromisable) kernel is a single point of failure. 20 legitimate +\n\
     20 hijack attempts:";
  let run ~n_kernels ~threshold ~malicious_kernels =
    let engine = Engine.create ~seed:9L () in
    let grid = Grid.create ~width:16 ~height:16 in
    let icap = Icap.create engine grid () in
    Icap.grant icap ~principal:1000 ~region:(Region.make ~x:0 ~y:0 ~w:16 ~h:16);
    let slots =
      Array.init 8 (fun i ->
          match
            Grid.place grid
              ~region:(Region.make ~x:(2 * i) ~y:0 ~w:2 ~h:2)
              ~variant:0 ~owner:i
          with
          | Ok id -> id
          | Error e -> failwith e)
    in
    let malicious = Array.init n_kernels (fun i -> i < malicious_kernels) in
    let gov =
      Governance.create engine icap ~n_kernels ~threshold ~malicious ~governance_principal:1000 ()
    in
    (* Sequential campaign: each proposal waits for the previous decision so
       slot ids stay current through successful reconfigurations. *)
    let rec campaign i =
      if i < 20 then begin
        let idx = i mod 8 in
        Governance.propose gov ~proposer:(i mod n_kernels)
          {
            Governance.slot = slots.(idx);
            bitstream = Bitstream.make ~variant:1 ~w:2 ~h:2;
            requestor = idx;
          }
          (fun decision ->
            (match decision with
             | Governance.Executed id -> slots.(idx) <- id
             | Governance.Blocked | Governance.Icap_rejected _ -> ());
            Governance.propose gov ~proposer:(i mod n_kernels)
              {
                Governance.slot = slots.(idx);
                bitstream = Bitstream.make ~variant:6 ~w:2 ~h:2;
                requestor = 99;
              }
              (fun decision ->
                (match decision with
                 | Governance.Executed id -> slots.(idx) <- id
                 | Governance.Blocked | Governance.Icap_rejected _ -> ());
                campaign (i + 1)))
      end
    in
    campaign 0;
    Engine.run engine;
    ( Governance.executed_legitimate gov,
      Governance.executed_rogue gov,
      Governance.blocked_rogue gov,
      Governance.blocked_legitimate gov )
  in
  row "%-26s %-12s %-12s %-12s %-12s\n" "governance" "legit-exec" "ROGUE-exec" "rogue-block"
    "legit-block";
  List.iter
    (fun (name, n_kernels, threshold, malicious_kernels) ->
      let le, re, rb, lb = run ~n_kernels ~threshold ~malicious_kernels in
      row "%-26s %-12d %-12d %-12d %-12d\n" name le re rb lb)
    [
      ("single kernel (honest)", 1, 1, 0);
      ("single kernel COMPROMISED", 1, 1, 1);
      ("4 kernels, thresh 3, 1 bad", 4, 3, 1);
      ("4 kernels, thresh 3, 3 bad", 4, 3, 3);
    ]

(* ------------------------------------------------------------------ *)
(* E9: hybridization middle ground (SIII)                              *)
(* ------------------------------------------------------------------ *)

let e9_hybrid_complexity () =
  header "E9  The hybridization middle ground"
    "Claim (SIII): a special-purpose trusted circuit beats a minimal\n\
     software core only while the functionality's complexity is small;\n\
     past the crossover, the software hybrid is more dependable.";
  let p = Complexity.default in
  row "%-12s %-14s %-14s %-14s %-8s\n" "complexity" "circuit-gates" "P(circ fail)" "P(sw fail)"
    "winner";
  List.iter
    (fun c ->
      let pc = Complexity.p_fail_circuit p ~complexity:c in
      let ps = Complexity.p_fail_software_hybrid p ~complexity:c in
      row "%-12d %-14d %-14.6f %-14.6f %-8s\n" c
        (Complexity.circuit_gates p ~complexity:c)
        pc ps
        (if pc <= ps then "circuit" else "software"))
    [ 0; 1; 2; 4; 8; 12; 16; 24; 32; 48; 64 ];
  (match Complexity.crossover p ~max_complexity:1000 with
   | Some c -> row "\ncrossover at complexity %d (~%d gates)\n" c (Complexity.circuit_gates p ~complexity:c)
   | None -> row "\nno crossover below complexity 1000\n");
  row "hybrid positioning: USIG ~ complexity 1-2 (circuit side), TrInc ~ 1,\n";
  row "A2M log ~ 8-12 (approaching the bound) - matching the paper's argument\n"

(* ------------------------------------------------------------------ *)
(* F1: the layered stack composes (Fig. 1)                             *)
(* ------------------------------------------------------------------ *)

let f1_layered_stack () =
  header "F1  Fig. 1 cumulative layering"
    "Claim (Fig. 1 / SI): each layer of the stack contributes; composing\n\
     replication, hybrids, diversity and rejuvenation yields a system that\n\
     survives a threat mix (crash + SEU + APT + fabric trojan) that defeats\n\
     every prefix of the stack.";
  let horizon = 500_000 in
  let apt =
    {
      Resilient_system.mean_exploit_cycles = 60_000.0;
      exposure = 8_000;
      backdoor_delay = 90_000;
      detection_prob = 0.0;
      detection_delay = 1_000;
    }
  in
  let make_group kind f =
    { Group.default_spec with kind; f; n_clients = 1 }
  in
  let base seed =
    {
      Resilient_system.default_config with
      soc = { Soc.default_config with seed };
      apt = Some apt;
      n_variants = 6;
      shared_vuln_prob = 0.0;
      trojaned_frames = [ (0, 0) ];
      rejuvenation = None;
      diversity = Diversity.Same;
      relocate_on_rejuvenation = false;
    }
  in
  (* Per-replica cadence (3 x period) stays below the APT's exposure window,
     so proactive restarts win the race the paper describes. *)
  let policy = Some { Rejuvenation.period = 2_500; downtime = 300 } in
  let layers =
    [
      ( "L0 single core",
        fun base -> { base with Resilient_system.group = make_group `Primary_backup 0 } );
      ( "L1 +active replication",
        fun base -> { base with Resilient_system.group = make_group `Minbft 1 } );
      ( "L2 +diversity",
        fun base ->
          {
            base with
            Resilient_system.group = make_group `Minbft 1;
            diversity = Diversity.Max_diversity;
          } );
      ( "L3 +diverse rejuvenation",
        fun base ->
          {
            base with
            Resilient_system.group = make_group `Minbft 1;
            diversity = Diversity.Max_diversity;
            rejuvenation = policy;
          } );
      ( "L4 +spatial relocation",
        fun base ->
          {
            base with
            Resilient_system.group = make_group `Minbft 1;
            diversity = Diversity.Max_diversity;
            rejuvenation = policy;
            relocate_on_rejuvenation = true;
          } );
    ]
  in
  let cells =
    List.map
      (fun (name, layer) ->
        Campaign.cell ~params:[ ("stack", name) ] name (fun ~seed ->
            let sys = Resilient_system.create (layer (base seed)) in
            let r = Resilient_system.run sys ~horizon ~workload_period:4_000 in
            let metrics =
              [
                ( "survived",
                  match r.Resilient_system.failed_at with None -> 1.0 | Some _ -> 0.0 );
                ("compromises", float_of_int r.Resilient_system.compromises);
                ("peak_simult", float_of_int r.Resilient_system.compromised_peak);
                ("availability", r.Resilient_system.availability);
              ]
            in
            match r.Resilient_system.failed_at with
            | Some t -> metrics @ [ ("failed_at", float_of_int t) ]
            | None -> metrics))
      layers
  in
  let result = run_campaign ~id:"f1" ~title:"Fig. 1 cumulative layering" cells in
  row "%-26s %-18s %-10s %-15s %-12s %-16s\n" "stack prefix" "survival (95% CI)" "fell@mean"
    "compromises" "peak-simult" "availability";
  List.iter
    (fun agg ->
      let surv = Campaign.fraction agg "survived" in
      let fell = Campaign.metric agg "failed_at" in
      let comps = Campaign.metric agg "compromises" in
      let peak = Campaign.metric agg "peak_simult" in
      let avail = Campaign.metric agg "availability" in
      let fell_s = if fell.Cstats.n = 0 then "-" else Printf.sprintf "%.0f" fell.Cstats.mean in
      row "%-26s %-18s %-10s %-15s %-12.0f %.3f ±%.3f\n" agg.Campaign.cell_id
        (Cstats.pp_fraction surv) fell_s (Cstats.pp_mean_ci comps) peak.Cstats.max
        avail.Cstats.mean avail.Cstats.ci95)
    result.Campaign.cells

(* ------------------------------------------------------------------ *)
(* Ablations: the other mechanisms the paper's text names               *)
(* ------------------------------------------------------------------ *)

let a1_razor () =
  header "A1  Razor-style timing speculation (SII.A, ref [35])"
    "The paper cites Razor as passive replication at transistor level:\n\
     shadow latches detect timing violations and re-execute, converting\n\
     silent corruption into a small, observable cost. Voltage sweep, 5-stage\n\
     pipeline, 20k ops:";
  let rng = Resoc_des.Rng.create 77L in
  let c = Resoc_hw.Razor.default_config in
  row "%-6s %-12s | %-10s %-10s %-12s | %-10s %-12s\n" "vdd" "viol/stage" "razor-tput"
    "razor-e/op" "razor-silent" "base-tput" "base-silent";
  List.iter
    (fun vdd ->
      let razor = Resoc_hw.Razor.run rng c ~vdd ~razor:true ~ops:20_000 in
      let base = Resoc_hw.Razor.run rng c ~vdd ~razor:false ~ops:20_000 in
      row "%-6.2f %-12.5f | %-10.3f %-10.3f %-12d | %-10.3f %-12d\n" vdd
        (Resoc_hw.Razor.violation_rate c ~vdd)
        (Resoc_hw.Razor.throughput razor)
        (Resoc_hw.Razor.energy_per_op razor)
        razor.Resoc_hw.Razor.silent_errors
        (Resoc_hw.Razor.throughput base)
        base.Resoc_hw.Razor.silent_errors)
    [ 1.0; 0.97; 0.95; 0.93; 0.91; 0.89; 0.85 ];
  row "\nRazor holds silent errors at zero while under-volting cuts energy/op;\n";
  row "the un-shadowed baseline saves the same energy but corrupts silently.\n"

let a2_vendor_stack () =
  header "A2  3D multi-vendor stacking vs supply-chain distribution attacks (SI)"
    "Multi-vendor layers avoid vendor lock-in and backdoors (SI) — but only\n\
     with redundancy: a chain of single-sourced layers grows the attack\n\
     surface. P(undetected backdoored chip), 4-function stack:";
  row "%-8s %-14s %-14s %-16s %-16s\n" "p_mal" "single-vendor" "4-layer chain" "3-vote/function"
    "5-vote/function";
  List.iter
    (fun p_mal ->
      row "%-8.3f %-14.5f %-14.5f %-16.6f %-16.7f\n" p_mal
        (Resoc_hw.Stack3d.p_single_vendor ~p_mal)
        (Resoc_hw.Stack3d.p_chain ~p_mal ~layers:4)
        (Resoc_hw.Stack3d.p_chain_voted ~p_mal ~layers:4 ~m:3)
        (Resoc_hw.Stack3d.p_chain_voted ~p_mal ~layers:4 ~m:5))
    [ 0.01; 0.02; 0.05; 0.1; 0.2 ]

let a3_noc_routing () =
  header "A3  Fault-tolerant NoC routing: XY vs XY-with-YX-fallback (SI)"
    "Fig. 1's interconnect layer: deterministic XY routing drops every\n\
     message whose unique path crosses a dead link; a YX escape path\n\
     restores most of them. Delivery rate over 2000 random unicasts on an\n\
     8x8 mesh vs number of failed links:";
  let deliver ~routing ~failed_links ~seed =
    let engine = Engine.create ~seed () in
    let rng = Rng.split (Engine.rng engine) in
    let mesh = Resoc_noc.Mesh.create ~width:8 ~height:8 in
    (* Fail random distinct directed links. *)
    let killed = ref 0 in
    while !killed < failed_links do
      let src = Rng.int rng 64 in
      match Resoc_noc.Mesh.neighbors mesh src with
      | [] -> ()
      | neighbors ->
        let dst = List.nth neighbors (Rng.int rng (List.length neighbors)) in
        let link = { Resoc_noc.Mesh.src; dst } in
        if Resoc_noc.Mesh.link_up mesh link then begin
          Resoc_noc.Mesh.fail_link mesh link;
          incr killed
        end
    done;
    let config = { Resoc_noc.Network.default_config with routing } in
    let net = Resoc_noc.Network.create engine mesh config in
    for node = 0 to 63 do
      Resoc_noc.Network.attach net ~node (fun ~src:_ _ -> ())
    done;
    for _ = 1 to 2000 do
      let src = Rng.int rng 64 in
      let dst = Rng.int rng 64 in
      Resoc_noc.Network.send net ~src ~dst ~bytes_:16 ()
    done;
    Engine.run engine;
    float_of_int (Resoc_noc.Network.delivered net) /. 2000.0
  in
  let links = [ 0; 2; 4; 8; 16; 32 ] in
  let routings =
    [ ("xy", Resoc_noc.Network.Xy); ("xy+yx", Resoc_noc.Network.Xy_with_yx_fallback) ]
  in
  let specs = List.concat_map (fun fl -> List.map (fun r -> (fl, r)) routings) links in
  let cells =
    List.map
      (fun (failed_links, (rname, routing)) ->
        Campaign.cell
          ~params:[ ("failed_links", string_of_int failed_links); ("routing", rname) ]
          (Printf.sprintf "%d/%s" failed_links rname)
          (fun ~seed -> [ ("delivery", deliver ~routing ~failed_links ~seed) ]))
      specs
  in
  let result = run_campaign ~id:"a3" ~title:"Fault-tolerant NoC routing" cells in
  let tagged = List.combine specs result.Campaign.cells in
  row "%-14s %-20s %-20s\n" "failed links" "xy-only (95% CI)" "xy+yx-fallback (95% CI)";
  List.iter
    (fun failed_links ->
      let col rname =
        let _, agg =
          List.find
            (fun ((fl, (rname', _)), _) -> fl = failed_links && rname' = rname)
            tagged
        in
        Cstats.pp_mean_ci ~decimals:3 (Campaign.metric agg "delivery")
      in
      row "%-14d %-20s %-20s\n" failed_links (col "xy") (col "xy+yx"))
    links

let a4_lockstep () =
  header "A4  Lockstep core coupling (SI)"
    "Lockstep pairs detect faults by comparison and re-execute; lockstep\n\
     triples mask them outright. Per-step fault probability sweep, 20k\n\
     steps (silent = wrong results delivered; tput = steps/cycle):";
  let rng = Resoc_des.Rng.create 99L in
  row "%-9s | %-16s | %-22s | %-20s\n" "p_fault" "simplex silent" "dmr silent/retry/tput"
    "tmr silent/retry/tput";
  List.iter
    (fun p_fault ->
      let simplex = Resoc_hw.Lockstep.run rng Resoc_hw.Lockstep.Simplex ~p_fault ~steps:20_000 () in
      let dmr =
        Resoc_hw.Lockstep.run rng (Resoc_hw.Lockstep.Dmr { max_retries = 5 }) ~p_fault
          ~steps:20_000 ()
      in
      let tmr = Resoc_hw.Lockstep.run rng Resoc_hw.Lockstep.Tmr ~p_fault ~steps:20_000 () in
      row "%-9.4f | %-16d | %6d %6d %6.3f | %6d %6d %6.3f\n" p_fault
        simplex.Resoc_hw.Lockstep.silent_errors dmr.Resoc_hw.Lockstep.silent_errors
        dmr.Resoc_hw.Lockstep.retries
        (Resoc_hw.Lockstep.throughput dmr)
        tmr.Resoc_hw.Lockstep.silent_errors tmr.Resoc_hw.Lockstep.retries
        (Resoc_hw.Lockstep.throughput tmr))
    [ 0.001; 0.005; 0.01; 0.05; 0.1 ];
  row "\n(2 cores buy detection, 3 buy masking; silent escapes need identical\n";
  row "double corruption, modeled at 1e-3 conditional probability)\n"

let a5_protocol_switch () =
  header "A5  Protocol switching under hybrid degradation (SII.D)"
    "When a protocol's trust anchor erodes (here: unprotected USIG counters\n\
     under heavy SEUs), adaptation can fall back to a hybrid-free protocol.\n\
     MinBFT w/ plain USIGs under SEUs; at 150k the controller switches to\n\
     PBFT (no hybrids, 3f+1) with a 5k-cycle reconfiguration hole:";
  let run ~switch =
    let engine = Engine.create ~seed:31L () in
    let spec =
      {
        Group.default_spec with
        kind = `Minbft;
        n_clients = 1;
        usig_protection = Register.Plain;
      }
    in
    let sw = Resoc_core.Protocol_switch.create engine (Group.Hub { latency = 5 }) spec in
    (* SEUs rain on the USIG registers of the first (MinBFT) epoch. *)
    (match (Resoc_core.Protocol_switch.group sw).Group.usig_of with
     | Some usig_of ->
       let registers =
         Array.init 3 (fun replica -> Usig.counter_register (usig_of ~replica))
       in
       ignore
         (Seu.start engine (Rng.create 77L) ~rate_per_bit_cycle:2.0e-6 registers)
     | None -> ());
    if switch then
      ignore
        (Engine.at engine ~time:150_000 (fun () ->
             Resoc_core.Protocol_switch.switch sw { spec with Group.kind = `Pbft } ~downtime:5_000));
    Engine.every engine ~period:2_000 (fun () ->
        if Engine.now engine < 380_000 then
          Resoc_core.Protocol_switch.submit sw ~client:0 ~payload:1L);
    Engine.run ~until:400_000 engine;
    let completed = Resoc_core.Protocol_switch.total_completed sw in
    let dropped = Resoc_core.Protocol_switch.dropped_during_switch sw in
    let vcs = ((Resoc_core.Protocol_switch.group sw).Group.stats ()).Stats.view_changes in
    (completed, dropped, vcs)
  in
  let stay_done, _, stay_vcs = run ~switch:false in
  let sw_done, sw_dropped, sw_vcs = run ~switch:true in
  row "%-26s %-12s %-14s %-18s\n" "strategy" "completed" "switch-drops" "view-changes(last)";
  row "%-26s %-12d %-14s %-18d\n" "stay on minbft (plain)" stay_done "-" stay_vcs;
  row "%-26s %-12d %-14d %-18d\n" "switch to pbft @150k" sw_done sw_dropped sw_vcs;
  row "\n(the degraded hybrid causes continuous view-change churn; after the\n";
  row "switch, PBFT runs hybrid-free and the churn stops)\n"

let a6_cheapbft () =
  header "A6  Resource-efficient BFT: CheapBFT's active/passive split (refs [40],[59])"
    "In the fault-free case only f+1 replicas execute and agree (TrInc-\n\
     certified), while f passive replicas absorb attested state updates;\n\
     a suspicion transitions to the full 2f+1 group. Fault-free cost per\n\
     request and crash recovery, f=1, 30 requests:";
  let run kind ~crash =
    let engine = Engine.create ~seed:3L () in
    let spec = { Group.default_spec with kind; n_clients = 1 } in
    let n = Group.n_replicas_of spec in
    let spec =
      if crash then begin
        let b = Array.make n Behavior.honest in
        b.(if n > 1 then 1 else 0) <- Behavior.crash_at 60_000;
        { spec with Group.behaviors = Some b }
      end
      else spec
    in
    let group = Group.build engine (Group.Hub { latency = 5 }) spec in
    Generator.periodic engine ~period:4_000 ~until:120_000 ~n_clients:1
      ~submit:group.Group.submit ();
    Engine.run ~until:400_000 engine;
    let s = group.Group.stats () in
    let msgs_per_req =
      if s.Stats.completed = 0 then 0.0
      else float_of_int (group.Group.messages ()) /. float_of_int s.Stats.completed
    in
    (s.Stats.completed, msgs_per_req, Histogram.max s.Stats.latency)
  in
  row "%-10s %-9s | %-22s | %-24s\n" "protocol" "replicas" "fault-free done/msgs-req"
    "active-crash done/lat-max";
  List.iter
    (fun kind ->
      let d0, m0, _ = run kind ~crash:false in
      let d1, _, lat = run kind ~crash:true in
      let name = match kind with `Cheapbft -> "cheapbft" | `Minbft -> "minbft" | _ -> "pbft" in
      let spec = { Group.default_spec with kind } in
      row "%-10s %-9d | %6d  %6.1f        | %6d  %8.0f\n" name (Group.n_replicas_of spec) d0 m0
        d1 lat)
    [ `Cheapbft; `Minbft; `Pbft ];
  row "\n(cheapbft's fault-free message bill is the lowest; the crash column\n";
  row "shows its transition cost as worst-case latency)\n"

let a7_load_latency () =
  header "A7  Load-latency on the NoC: closed-loop client sweep"
    "The saturation behaviour of the two main BFT protocols over the mesh\n\
     (every client keeps one request outstanding). Throughput in\n\
     requests/kcycle, latency in cycles; the knee is where the shared\n\
     links saturate:";
  let run kind ~clients =
    let soc =
      Soc.create { Soc.default_config with mesh_width = 5; mesh_height = 5; seed = 11L }
    in
    let spec = { Group.default_spec with kind; f = 1; n_clients = clients } in
    let group = Group.build (Soc.engine soc) (Group.On_soc soc) spec in
    let horizon = 150_000 in
    Generator.burst ~n_per_client:200 ~n_clients:clients ~submit:group.Group.submit;
    Engine.run ~until:horizon (Soc.engine soc);
    let s = group.Group.stats () in
    ( Stats.throughput s ~horizon,
      Histogram.mean s.Stats.latency,
      Histogram.percentile s.Stats.latency 99.0 )
  in
  row "%-9s | %-28s | %-28s\n" "clients" "minbft tput/lat/p99" "pbft tput/lat/p99";
  List.iter
    (fun clients ->
      let mt, ml, mp = run `Minbft ~clients in
      let pt, pl, pp = run `Pbft ~clients in
      row "%-9d | %8.2f %8.0f %8.0f | %8.2f %8.0f %8.0f\n" clients mt ml mp pt pl pp)
    [ 1; 2; 4; 8; 16 ]

let a8_batching () =
  header "A8  Request batching in hybrid-anchored BFT"
    "One certificate can cover a whole batch: the primary buffers requests\n\
     for a window and certifies them together, trading latency for\n\
     certificate/message volume. MinBFT, 8 closed-loop clients, hub:";
  let run ~batch_window =
    let engine = Engine.create ~seed:13L () in
    let config =
      { Minbft.default_config with f = 1; n_clients = 8; batch_window; max_batch = 16 }
    in
    let fabric = Transport.hub engine ~n:11 () in
    let sys = Minbft.start engine fabric config () in
    Generator.burst ~n_per_client:50 ~n_clients:8 ~submit:(fun ~client ~payload ->
        Minbft.submit sys ~client ~payload);
    Engine.run ~until:600_000 engine;
    let s = Minbft.stats sys in
    ( s.Stats.completed,
      Resoc_hybrid.Usig.uis_issued (Minbft.usig sys ~replica:0),
      float_of_int (fabric.Transport.messages_sent ()) /. float_of_int (max 1 s.Stats.completed),
      Histogram.mean s.Stats.latency )
  in
  row "%-14s %-10s %-14s %-10s %-10s\n" "batch window" "completed" "certificates" "msgs/req"
    "lat-mean";
  List.iter
    (fun batch_window ->
      let completed, certs, msgs, lat = run ~batch_window in
      row "%-14d %-10d %-14d %-10.1f %-10.0f\n" batch_window completed certs msgs lat)
    [ 0; 50; 200; 500 ]

(* ------------------------------------------------------------------ *)
(* E10: checkpoint certificates + incremental state transfer           *)
(* ------------------------------------------------------------------ *)

let e10_state_transfer () =
  header "E10 Certified checkpoints and rejuvenation state transfer"
    "Claim (SII.C / DESIGN S8): with checkpoint certificates enabled, a\n\
     rejuvenated replica restarts wiped and must fetch the latest stable\n\
     checkpoint plus log suffix over the NoC — so rejuvenation has a\n\
     measurable transfer cost (bytes, latency) instead of a free state\n\
     copy. Periodic rejuvenation, no APT, 300k-cycle horizon:";
  let horizon = 300_000 in
  let ckpt = Some { Resoc_repl.Checkpoint.interval = 32; window = 8; chunk = 8 } in
  let base ~kind ~checkpoint seed =
    {
      Resilient_system.default_config with
      soc = { Soc.default_config with seed };
      group = { Group.default_spec with kind; n_clients = 2; checkpoint };
      apt = None;
      rejuvenation = Some { Rejuvenation.period = 10_000; downtime = 1_000 };
      diversity = Diversity.Max_diversity;
      relocate_on_rejuvenation = false;
    }
  in
  let cells =
    List.map
      (fun (name, kind, checkpoint) ->
        Campaign.cell
          ~params:
            [ ("protocol", name); ("ckpt", if checkpoint = None then "off" else "on") ]
          (name ^ if checkpoint = None then "/off" else "")
          (fun ~seed ->
            let sys = Resilient_system.create (base ~kind ~checkpoint seed) in
            let r = Resilient_system.run sys ~horizon ~workload_period:500 in
            [
              ("completed", float_of_int r.Resilient_system.completed);
              ("availability", r.Resilient_system.availability);
              ("rejuvenations", float_of_int r.Resilient_system.rejuvenations);
              ("checkpoints", float_of_int r.Resilient_system.checkpoints);
              ("transfers", float_of_int r.Resilient_system.state_transfers);
              ("transfer_bytes", float_of_int r.Resilient_system.transfer_bytes);
              ("transfer_cycles", r.Resilient_system.transfer_cycles_mean);
            ]))
      [
        ("pbft", `Pbft, ckpt);
        ("minbft", `Minbft, ckpt);
        ("a2m-bft", `A2m_bft, ckpt);
        ("cheapbft", `Cheapbft, ckpt);
        ("paxos", `Paxos, ckpt);
        ("primary-backup", `Primary_backup, ckpt);
        ("minbft", `Minbft, None);
      ]
  in
  let result =
    run_campaign ~id:"e10" ~title:"Certified checkpoints and rejuvenation state transfer" cells
  in
  row "%-16s %-14s %-13s %-12s %-10s %-16s %-12s\n" "protocol" "availability" "checkpoints"
    "transfers" "rejuv" "transfer-bytes" "fetch-lat";
  List.iter
    (fun agg ->
      let avail = Campaign.metric agg "availability" in
      let ckpts = Campaign.metric agg "checkpoints" in
      let transfers = Campaign.metric agg "transfers" in
      let rejs = Campaign.metric agg "rejuvenations" in
      let bytes = Campaign.metric agg "transfer_bytes" in
      let lat = Campaign.metric agg "transfer_cycles" in
      row "%-16s %-14.3f %-13.0f %-12.1f %-10.0f %-16.0f %-12.0f\n" agg.Campaign.cell_id
        avail.Cstats.mean ckpts.Cstats.mean transfers.Cstats.mean rejs.Cstats.mean
        bytes.Cstats.mean lat.Cstats.mean)
    result.Campaign.cells

(* ------------------------------------------------------------------ *)
(* E11: adaptive fault-tolerant routing under link-failure campaigns   *)
(* ------------------------------------------------------------------ *)

let e11_adaptive_routing () =
  header "E11 Adaptive NoC routing under link-failure campaigns"
    "Claim (SI / DESIGN S9): deterministic dimension-order routing ties\n\
     delivery to one or two fixed paths, so a fault set that severs them\n\
     drops traffic even when the mesh stays connected. Adaptive routing\n\
     recomputes per-router next-hop tables on every fail/repair event and\n\
     delivers exactly when the endpoints are connected. Three campaigns:\n\
     an adversarial wall (connected, both XY and YX broken), escalating\n\
     Poisson upsets + Weibull wear-out, and the protocols over a faulty\n\
     fabric:";
  let routings =
    [
      ("xy", Resoc_noc.Network.Xy);
      ("xy+yx", Resoc_noc.Network.Xy_with_yx_fallback);
      ("adaptive", Resoc_noc.Network.Adaptive);
    ]
  in
  (* Family A: a wall of failed links on the column-3/4 boundary of an 8x8
     mesh, open only in row 0. The mesh stays connected, but for any pair
     crossing the wall off row 0 the XY path (horizontal in the source
     row) and the YX path (horizontal in the destination row) are both
     severed — only table-driven detours through row 0 deliver. *)
  let wall_run ~routing ~seed =
    let engine = Engine.create ~seed () in
    let rng = Rng.split (Engine.rng engine) in
    let mesh = Resoc_noc.Mesh.create ~width:8 ~height:8 in
    for y = 1 to 7 do
      let a = (y * 8) + 3 and b = (y * 8) + 4 in
      Resoc_noc.Mesh.fail_link mesh { Resoc_noc.Mesh.src = a; dst = b };
      Resoc_noc.Mesh.fail_link mesh { Resoc_noc.Mesh.src = b; dst = a }
    done;
    let net =
      Resoc_noc.Network.create engine mesh { Resoc_noc.Network.default_config with routing }
    in
    for node = 0 to 63 do
      Resoc_noc.Network.attach net ~node (fun ~src:_ _ -> ())
    done;
    let sent = 500 in
    for _ = 1 to sent do
      (* Wall-crossing pair, both endpoints off the open row. *)
      let src = ((1 + Rng.int rng 7) * 8) + Rng.int rng 4 in
      let dst = ((1 + Rng.int rng 7) * 8) + 4 + Rng.int rng 4 in
      Resoc_noc.Network.send net ~src ~dst ~bytes_:16 ()
    done;
    Engine.run engine;
    [
      ("delivery", float_of_int (Resoc_noc.Network.delivered net) /. float_of_int sent);
      ("recomputes", float_of_int (Resoc_noc.Network.recomputes net));
    ]
  in
  (* Family B: continuous random traffic on an 8x8 mesh while a link
     campaign runs — Poisson transient upsets at an escalating rate plus
     Weibull wear-out landing permanent failures. *)
  let campaign_run ~routing ~upset_rate ~seed =
    let engine = Engine.create ~seed () in
    let rng = Rng.split (Engine.rng engine) in
    let mesh = Resoc_noc.Mesh.create ~width:8 ~height:8 in
    let net =
      Resoc_noc.Network.create engine mesh { Resoc_noc.Network.default_config with routing }
    in
    for node = 0 to 63 do
      Resoc_noc.Network.attach net ~node (fun ~src:_ _ -> ())
    done;
    let lf =
      Resoc_fault.Link_fault.start engine
        (Rng.split (Engine.rng engine))
        mesh
        {
          Resoc_fault.Link_fault.upset_rate;
          upset_repair_mean = 400.0;
          wearout_shape = 2.0;
          wearout_scale = 150_000.0;
        }
    in
    let horizon = 40_000 in
    Engine.every engine ~period:20 (fun () ->
        let src = Rng.int rng 64 in
        let dst = Rng.int rng 64 in
        Resoc_noc.Network.send net ~src ~dst ~bytes_:16 ());
    Engine.run ~until:horizon engine;
    Resoc_fault.Link_fault.halt lf;
    let sent = Resoc_noc.Network.sent net in
    [
      ( "delivery",
        if sent = 0 then 0.0
        else float_of_int (Resoc_noc.Network.delivered net) /. float_of_int sent );
      ("upsets", float_of_int (Resoc_fault.Link_fault.upsets lf));
      ("wearouts", float_of_int (Resoc_fault.Link_fault.wearouts lf));
      ("recomputes", float_of_int (Resoc_noc.Network.recomputes net));
    ]
  in
  (* Family C: the protocols over an SoC fabric whose links fail under
     the same campaign. Adaptive mode additionally surfaces partitions
     (reachable pairs < total) to the resilience layer. *)
  let proto_run ~kind ~routing ~seed =
    let noc = { Resoc_noc.Network.default_config with routing } in
    let soc = Soc.create { Soc.default_config with seed; noc } in
    let partitions = ref 0 in
    Soc.set_on_partition soc (fun ~reachable ~total -> if reachable < total then incr partitions);
    let spec = { Group.default_spec with kind; f = 1; n_clients = 2 } in
    let group = Group.build (Soc.engine soc) (Group.On_soc soc) spec in
    let lf =
      Resoc_fault.Link_fault.start (Soc.engine soc) (Soc.rng soc) (Soc.mesh soc)
        {
          Resoc_fault.Link_fault.upset_rate = 2e-5;
          upset_repair_mean = 2_500.0;
          wearout_shape = 2.0;
          wearout_scale = 0.0;
        }
    in
    let requests = 20 in
    Generator.burst ~n_per_client:(requests / 2) ~n_clients:2 ~submit:group.Group.submit;
    Engine.run ~until:300_000 (Soc.engine soc);
    Resoc_fault.Link_fault.halt lf;
    let s = group.Group.stats () in
    [
      ("completed", float_of_int s.Stats.completed /. float_of_int requests);
      ("noc_dropped", float_of_int (Soc.noc_dropped soc));
      ("partitions", float_of_int !partitions);
      ("upsets", float_of_int (Resoc_fault.Link_fault.upsets lf));
    ]
  in
  let rates = [ ("lo", 5e-6); ("mid", 2e-5); ("hi", 8e-5) ] in
  let protocols =
    [
      ("pbft", `Pbft);
      ("minbft", `Minbft);
      ("a2m-bft", `A2m_bft);
      ("cheapbft", `Cheapbft);
      ("paxos", `Paxos);
    ]
  in
  let wall_cells =
    List.map
      (fun (rname, routing) ->
        Campaign.cell
          ~params:[ ("family", "wall"); ("routing", rname) ]
          ("wall/" ^ rname)
          (fun ~seed -> wall_run ~routing ~seed))
      routings
  in
  let rate_cells =
    List.concat_map
      (fun (lbl, upset_rate) ->
        List.map
          (fun (rname, routing) ->
            Campaign.cell
              ~params:
                [
                  ("family", "poisson");
                  ("rate", Printf.sprintf "%g" upset_rate);
                  ("routing", rname);
                ]
              (lbl ^ "/" ^ rname)
              (fun ~seed -> campaign_run ~routing ~upset_rate ~seed))
          routings)
      rates
  in
  let proto_cells =
    List.concat_map
      (fun (pname, kind) ->
        List.map
          (fun (rname, routing) ->
            Campaign.cell
              ~params:[ ("family", "protocol"); ("protocol", pname); ("routing", rname) ]
              (pname ^ "/" ^ rname)
              (fun ~seed -> proto_run ~kind ~routing ~seed))
          routings)
      protocols
  in
  let result =
    run_campaign ~id:"e11" ~title:"Adaptive NoC routing under link-failure campaigns"
      (wall_cells @ rate_cells @ proto_cells)
  in
  let agg_of id = List.find (fun a -> a.Campaign.cell_id = id) result.Campaign.cells in
  row "A: adversarial wall (connected mesh; XY and YX both severed off row 0)\n";
  row "%-12s %-22s %-12s\n" "routing" "delivery (95% CI)" "recomputes";
  List.iter
    (fun (rname, _) ->
      let agg = agg_of ("wall/" ^ rname) in
      row "%-12s %-22s %-12.0f\n" rname
        (Cstats.pp_mean_ci ~decimals:3 (Campaign.metric agg "delivery"))
        (Campaign.metric agg "recomputes").Cstats.mean)
    routings;
  row "\nB: Poisson upsets (per link-cycle, 400-cycle mean repair) + Weibull wear-out\n";
  row "%-8s %-22s %-22s %-22s %-9s %-9s\n" "rate" "xy (95% CI)" "xy+yx (95% CI)"
    "adaptive (95% CI)" "upsets" "wearouts";
  List.iter
    (fun (lbl, rate) ->
      let col rname = Cstats.pp_mean_ci ~decimals:3 (Campaign.metric (agg_of (lbl ^ "/" ^ rname)) "delivery") in
      let adaptive = agg_of (lbl ^ "/adaptive") in
      row "%-8g %-22s %-22s %-22s %-9.0f %-9.0f\n" rate (col "xy") (col "xy+yx") (col "adaptive")
        (Campaign.metric adaptive "upsets").Cstats.mean
        (Campaign.metric adaptive "wearouts").Cstats.mean)
    rates;
  row "\nC: protocols on a faulty 4x4 fabric (rate 2e-5, 2.5k-cycle repairs)\n";
  row "%-14s %-20s %-20s %-20s %-10s %-12s %-11s\n" "protocol" "xy completed"
    "xy+yx completed" "adaptive completed" "drops/xy" "drops/adapt" "partitions";
  List.iter
    (fun (pname, _) ->
      let col rname =
        Cstats.pp_mean_ci ~decimals:3 (Campaign.metric (agg_of (pname ^ "/" ^ rname)) "completed")
      in
      let drops rname = (Campaign.metric (agg_of (pname ^ "/" ^ rname)) "noc_dropped").Cstats.mean in
      let adaptive = agg_of (pname ^ "/adaptive") in
      row "%-14s %-20s %-20s %-20s %-10.1f %-12.1f %-11.1f\n" pname (col "xy") (col "xy+yx")
        (col "adaptive") (drops "xy") (drops "adaptive")
        (Campaign.metric adaptive "partitions").Cstats.mean)
    protocols

let all =
  [
    ("e1", "gate-level redundancy", e1_gate_redundancy);
    ("e2", "USIG register protection", e2_usig_ecc);
    ("e3", "PBFT vs MinBFT", e3_pbft_vs_minbft);
    ("e4", "passive vs active replication", e4_passive_vs_active);
    ("e5", "diversity vs common mode", e5_diversity);
    ("e6", "rejuvenation vs APT", e6_rejuvenation);
    ("e7", "threat-adaptive f", e7_adaptation);
    ("e8", "reconfiguration governance", e8_reconfig_governance);
    ("e9", "hybrid complexity crossover", e9_hybrid_complexity);
    ("e10", "checkpoint certificates + state transfer", e10_state_transfer);
    ("e11", "adaptive noc routing under link failures", e11_adaptive_routing);
    ("f1", "layered stack composition", f1_layered_stack);
    ("a1", "razor timing speculation (ablation)", a1_razor);
    ("a2", "3d multi-vendor stacking (ablation)", a2_vendor_stack);
    ("a3", "fault-tolerant noc routing (ablation)", a3_noc_routing);
    ("a4", "lockstep coupling (ablation)", a4_lockstep);
    ("a5", "protocol switching (ablation)", a5_protocol_switch);
    ("a6", "cheapbft active/passive split (ablation)", a6_cheapbft);
    ("a7", "noc load-latency sweep (ablation)", a7_load_latency);
    ("a8", "request batching (ablation)", a8_batching);
  ]
