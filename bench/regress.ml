(* Perf-regression gate: compare a freshly measured BENCH_PERF.json
   against the committed baseline (bench/perf_baseline.json).

     regress.exe --baseline <file> --current <file>
                 [--min-ratio R] [--max-alloc-ratio R]

   A workload regresses when its events/sec falls below [min-ratio] x
   baseline (default 0.5 — generous, because shared CI runners are
   noisy) or its alloc bytes/event rises above [max-alloc-ratio] x
   baseline (default 1.15 — tight, because the workloads are
   deterministic so allocation counts are machine-independent; an
   absolute slack of 16 B/ev absorbs rounding on near-zero baselines).

   Exit codes: 0 = within tolerance, 1 = regression, 2 = unreadable or
   malformed input. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

(* Minimal recursive-descent JSON parser — enough for the fixed schema
   we emit ourselves; no external dependencies. *)
module Parser = struct
  type state = { src : string; mutable pos : int }

  let error st msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let advance st = st.pos <- st.pos + 1

  let rec skip_ws st =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
    | Some _ | None -> ()

  let expect st c =
    match peek st with
    | Some got when got = c -> advance st
    | Some got -> error st (Printf.sprintf "expected '%c', got '%c'" c got)
    | None -> error st (Printf.sprintf "expected '%c', got end of input" c)

  let literal st word value =
    String.iter (fun c -> expect st c) word;
    value

  let parse_string st =
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> error st "unterminated string"
      | Some '"' -> advance st
      | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some (('"' | '\\' | '/') as c) -> Buffer.add_char buf c
        | Some c -> error st (Printf.sprintf "unsupported escape '\\%c'" c)
        | None -> error st "unterminated escape");
        advance st;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
    in
    go ();
    Buffer.contents buf

  let parse_number st =
    let start = st.pos in
    let rec go () =
      match peek st with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance st;
        go ()
      | Some _ | None -> ()
    in
    go ();
    let text = String.sub st.src start (st.pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> error st (Printf.sprintf "bad number %S" text)

  let rec parse_value st =
    skip_ws st;
    match peek st with
    | Some '{' -> parse_obj st
    | Some '[' -> parse_list st
    | Some '"' -> Str (parse_string st)
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some ('0' .. '9' | '-') -> parse_number st
    | Some c -> error st (Printf.sprintf "unexpected '%c'" c)
    | None -> error st "unexpected end of input"

  and parse_obj st =
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        fields := (key, value) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          go ()
        | Some '}' -> advance st
        | _ -> error st "expected ',' or '}'"
      in
      go ();
      Obj (List.rev !fields)
    end

  and parse_list st =
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec go () =
        let value = parse_value st in
        items := value :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          go ()
        | Some ']' -> advance st
        | _ -> error st "expected ',' or ']'"
      in
      go ();
      List (List.rev !items)
    end

  let parse src =
    let st = { src; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then error st "trailing garbage";
    v
end

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> raise (Parse_error msg)

let field obj key =
  match obj with
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> raise (Parse_error (Printf.sprintf "missing field %S" key)))
  | _ -> raise (Parse_error (Printf.sprintf "expected object around %S" key))

let num = function
  | Num f -> f
  | _ -> raise (Parse_error "expected number")

let str = function
  | Str s -> s
  | _ -> raise (Parse_error "expected string")

type workload = { id : string; events_per_sec : float; alloc_bytes_per_event : float }

let load_perf path =
  let root = Parser.parse (read_file path) in
  (match field root "schema" with
  | Str "resoc-perf/1" -> ()
  | Str other -> raise (Parse_error (Printf.sprintf "unsupported schema %S" other))
  | _ -> raise (Parse_error "schema is not a string"));
  match field root "workloads" with
  | List ws ->
    List.map
      (fun w ->
        {
          id = str (field w "id");
          events_per_sec = num (field w "events_per_sec");
          alloc_bytes_per_event = num (field w "alloc_bytes_per_event");
        })
      ws
  | _ -> raise (Parse_error "workloads is not a list")

let () =
  let baseline = ref "" in
  let current = ref "" in
  let min_ratio = ref 0.5 in
  let max_alloc_ratio = ref 1.15 in
  let alloc_slack = 16.0 in
  let usage = "regress.exe --baseline <json> --current <json> [--min-ratio R] [--max-alloc-ratio R]" in
  let args =
    [
      ("--baseline", Arg.Set_string baseline, "committed perf baseline JSON");
      ("--current", Arg.Set_string current, "freshly measured BENCH_PERF.json");
      ("--min-ratio", Arg.Set_float min_ratio, "events/sec floor as fraction of baseline (default 0.5)");
      ( "--max-alloc-ratio",
        Arg.Set_float max_alloc_ratio,
        "alloc bytes/event ceiling as multiple of baseline (default 1.15)" );
    ]
  in
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !baseline = "" || !current = "" then begin
    prerr_endline usage;
    exit 2
  end;
  match (load_perf !baseline, load_perf !current) with
  | exception Parse_error msg ->
    Printf.eprintf "regress: %s\n" msg;
    exit 2
  | base, cur ->
    let regressed = ref false in
    (* One row per baseline workload: (id, verdict, detail columns). *)
    let rows =
      List.map
        (fun b ->
          match List.find_opt (fun c -> c.id = b.id) cur with
          | None ->
            regressed := true;
            (b.id, "MISSING", "-", "-", "-", "-")
          | Some c ->
            let speed_ratio = c.events_per_sec /. b.events_per_sec in
            let alloc_delta = c.alloc_bytes_per_event -. b.alloc_bytes_per_event in
            let alloc_ceiling = (b.alloc_bytes_per_event *. !max_alloc_ratio) +. alloc_slack in
            let speed_ok = speed_ratio >= !min_ratio in
            let alloc_ok = c.alloc_bytes_per_event <= alloc_ceiling in
            let verdict =
              if speed_ok && alloc_ok then "ok"
              else if not speed_ok then "REGRESSION: events/sec below floor"
              else "REGRESSION: allocations grew"
            in
            if not (speed_ok && alloc_ok) then regressed := true;
            ( b.id,
              verdict,
              Printf.sprintf "%.0f" c.events_per_sec,
              Printf.sprintf "%.2fx" speed_ratio,
              Printf.sprintf "%.1f" c.alloc_bytes_per_event,
              Printf.sprintf "%+.1f" alloc_delta ))
        base
    in
    List.iter
      (fun (id, verdict, evs, ratio, alloc, delta) ->
        Printf.printf "%-10s %12s ev/s  %8s vs base  %10s allocB/ev (%s)  %s\n" id evs ratio
          alloc delta verdict)
      rows;
    (* Mirror the table as markdown into the CI job summary when running
       under GitHub Actions. *)
    (match Sys.getenv_opt "GITHUB_STEP_SUMMARY" with
    | Some path when path <> "" ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc "### Perf regression gate\n\n";
          output_string oc
            "| workload | events/sec | vs baseline | allocB/ev | alloc delta | verdict |\n";
          output_string oc "|---|---:|---:|---:|---:|---|\n";
          List.iter
            (fun (id, verdict, evs, ratio, alloc, delta) ->
              Printf.fprintf oc "| %s | %s | %s | %s | %s | %s |\n" id evs ratio alloc delta
                verdict)
            rows;
          output_string oc "\n")
    | Some _ | None -> ());
    if !regressed then exit 1
