(* Self-timing harness for the simulator hot path.

   Five canonical workloads, each a deterministic simulation whose wall
   clock and allocation rate are measured end to end:

   - [churn]    pure-engine event churn: 64 self-rescheduling actors, no
                protocol logic, so the engine's queue discipline dominates;
   - [e3mesh]   the E3 kernel: a MinBFT group on a 4x4 mesh NoC serving a
                client burst — heap + NoC link model + protocol timers;
   - [e2seu]    the E2 kernel: one SEU-campaign replicate (MinBFT over the
                hub transport with SEU injection and periodic scrubbing);
   - [pbftkern] a PBFT group on the zero-cost hub transport serving a
                client burst — no NoC, no faults, so the replication
                layer's own data structures dominate;
   - [paxoskern] the same shape for the crash-fault Paxos group;
   - [bftcast]  a chip-wide broadcast storm on an 8x8 mesh with tree
                multicast on: 64 endpoints take turns broadcasting a
                protocol-sized payload to the whole chip through
                [Transport.broadcast], so each fan-out forks inside the
                NoC instead of injecting one flight per destination;
   - [bftcastuni] the identical workload with multicast off (the unicast
                fan-out baseline). Both report logical protocol messages
                as their event count — a mode-invariant work unit — so
                events/sec compares how fast each mode pushes the same
                protocol traffic, and the bftcast:bftcastuni ratio is the
                multicast speedup;
   - [pbftbatch] a PBFT group on the hub transport serving a client burst
                with request batching + agreement pipelining on (window
                50, max_batch 8, pipeline depth 4): each agreement
                instance carries up to 8 requests, so the protocol
                message count per request collapses;
   - [pbftbatchuni] the identical logical traffic with batching off (one
                instance per request). Both report completed client
                requests as their event count — the mode-invariant work
                unit — so events/sec is requests/sec and the
                pbftbatch:pbftbatchuni ratio is the batching speedup.

   Each workload runs [runs] times; we report the best wall time (least
   noisy) and the minimum allocated bytes per event (steady-state floor).
   The simulations themselves are pure functions of their seeds, so the
   event counts are exact and reproducible; only the timings vary.

   Results go to stdout and to BENCH_PERF.json (see [emit_json] for the
   schema); bench/regress.exe diffs that file against a committed
   baseline. *)

module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Register = Resoc_hw.Register
module Seu = Resoc_fault.Seu
module Usig = Resoc_hybrid.Usig
module Transport = Resoc_repl.Transport
module Minbft = Resoc_repl.Minbft
module Pbft = Resoc_repl.Pbft
module Paxos = Resoc_repl.Paxos
module Soc = Resoc_core.Soc
module Group = Resoc_core.Group
module Generator = Resoc_workload.Generator

type result = {
  id : string;
  runs : int;
  events : int;
  best_wall_s : float;
  events_per_sec : float;
  alloc_bytes_per_event : float;
}

(* --- workloads: each returns the number of events processed --- *)

let churn ~events () =
  let e = Engine.create () in
  let actors = 64 in
  for i = 0 to actors - 1 do
    (* One closure per actor, reused for every rescheduling, so the
       measurement isolates the engine's own per-event cost. The delay
       pattern is a fixed function of (now, actor): deterministic and
       cheap, with enough spread to exercise heap reordering. *)
    let rec fire () = ignore (Engine.schedule e ~delay:(1 + ((Engine.now e + i) mod 13)) fire) in
    ignore (Engine.schedule e ~delay:(1 + (i mod 7)) fire)
  done;
  Engine.run ~max_events:events e;
  Engine.events_processed e

(* One E3/E2 simulation lasts a few milliseconds; [repeat] independent
   replicas inside the measured region push each sample well past timer
   resolution and scheduler noise. *)

let e3_mesh ~requests ~repeat () =
  let total = ref 0 in
  for _ = 1 to repeat do
    let soc =
      Soc.create { Soc.default_config with mesh_width = 4; mesh_height = 4; seed = 77L }
    in
    let spec = { Group.default_spec with kind = `Minbft; f = 1; n_clients = 2 } in
    let group = Group.build (Soc.engine soc) (Group.On_soc soc) spec in
    Generator.burst ~n_per_client:(requests / 2) ~n_clients:2 ~submit:group.Group.submit;
    Engine.run ~until:2_000_000 (Soc.engine soc);
    total := !total + Engine.events_processed (Soc.engine soc)
  done;
  !total

let e2_seu_once ~horizon ~seed =
  let engine = Engine.create ~seed () in
  let config =
    { Minbft.default_config with f = 1; n_clients = 2; usig_protection = Register.Secded }
  in
  let n = Minbft.n_replicas config in
  let fabric = Transport.hub engine ~n:(n + 2) () in
  let sys = Minbft.start engine fabric config () in
  let registers =
    Array.init n (fun replica -> Usig.counter_register (Minbft.usig sys ~replica))
  in
  let seu =
    Seu.start engine (Rng.create (Int64.add seed 7L)) ~rate_per_bit_cycle:1.0e-6 registers
  in
  Engine.every engine ~period:250 (fun () -> Array.iter Register.scrub registers);
  Generator.periodic engine ~period:2_000 ~until:horizon ~n_clients:2
    ~submit:(fun ~client ~payload -> Minbft.submit sys ~client ~payload)
    ();
  Engine.run ~until:horizon engine;
  ignore (Seu.injected seu);
  Engine.events_processed engine

let e2_seu ~horizon ~repeat () =
  let total = ref 0 in
  (* Replicate seeds follow the campaign seed-tree convention: leaf [i]
     of the root seed, addressed in O(1) (see Rng.derive). *)
  for i = 0 to repeat - 1 do
    total := !total + e2_seu_once ~horizon ~seed:(Rng.derive 0x5EEDL i)
  done;
  !total

(* Replication-layer kernels: a BFT (PBFT) and a crash-fault (Paxos) group
   on the hub transport — constant-latency message passing, no NoC link
   model, no fault injection — serving a closed-loop client burst. Nearly
   every simulated event is a protocol message, so these isolate the cost
   of the agreement data structures (quorum tracking, agreement logs,
   broadcast fan-out). *)

let pbft_kern ~requests ~repeat () =
  let total = ref 0 in
  for i = 0 to repeat - 1 do
    let engine = Engine.create ~seed:(Rng.derive 0xBF7L i) () in
    let config = { Pbft.default_config with f = 1; n_clients = 2 } in
    let n = Pbft.n_replicas config in
    let fabric = Transport.hub engine ~n:(n + 2) () in
    let sys = Pbft.start engine fabric config () in
    Generator.burst ~n_per_client:(requests / 2) ~n_clients:2 ~submit:(fun ~client ~payload ->
        Pbft.submit sys ~client ~payload);
    Engine.run ~until:2_000_000 engine;
    total := !total + Engine.events_processed engine
  done;
  !total

(* Broadcast-heavy NoC kernel: endpoints on all 64 tiles of an 8x8 mesh
   take turns broadcasting a protocol-sized payload to the whole chip
   through [Transport.broadcast] — the same path the replica fan-outs
   use. With [multicast] each broadcast is one injection forking along
   the per-root tree (every live link carries the payload once); without,
   it is 64 independent flights whose hop-by-hop events and link queueing
   dominate. The returned count is logical NoC messages — identical
   accounting in both modes by construction — so events/sec compares
   wall time for the same protocol traffic and bftcast:bftcastuni is the
   multicast speedup. *)
let bft_cast ~multicast ~rounds ~repeat () =
  let total = ref 0 in
  for _ = 1 to repeat do
    let soc =
      Soc.create
        {
          Soc.default_config with
          mesh_width = 8;
          mesh_height = 8;
          noc = { Resoc_noc.Network.default_config with multicast };
          seed = 77L;
        }
    in
    let engine = Soc.engine soc in
    let n = 64 in
    let fabric =
      Soc.noc_fabric soc ~placement:(Array.init n Fun.id) ~size_of:(fun _ -> 96)
    in
    for i = 0 to n - 1 do
      fabric.Transport.set_handler i (fun ~src:_ _ -> ())
    done;
    let everyone = List.init n Fun.id in
    let sent = ref 0 in
    Engine.every engine ~period:64 (fun () ->
        if !sent < rounds then begin
          Transport.broadcast fabric ~src:(!sent mod n) ~to_:everyone !sent;
          incr sent
        end);
    Engine.run ~until:(64 * (rounds + 32)) engine;
    total := !total + Soc.noc_messages soc
  done;
  !total

(* Batching kernel pair: identical logical traffic (a closed-loop burst
   of [requests] requests from 16 clients against a PBFT f=2 group on the
   hub), with and without the batching config. Clients are closed-loop
   (one outstanding request each), so the client count is what lets
   batches actually form. The returned count is completed requests —
   identical in both modes by construction — so events/sec is
   requests/sec and pbftbatch:pbftbatchuni is the batching speedup. *)
let pbft_batch ~batching ~requests ~repeat () =
  let n_clients = 16 in
  let total = ref 0 in
  for i = 0 to repeat - 1 do
    let engine = Engine.create ~seed:(Rng.derive 0xBA7CL i) () in
    let batching =
      if batching then
        Some { Resoc_repl.Types.window_cycles = 50; max_batch = 8; pipeline_depth = 4 }
      else None
    in
    let config = { Pbft.default_config with f = 2; n_clients; batching } in
    let n = Pbft.n_replicas config in
    let fabric = Transport.hub engine ~n:(n + n_clients) () in
    let sys = Pbft.start engine fabric config () in
    Generator.burst ~n_per_client:(requests / n_clients) ~n_clients
      ~submit:(fun ~client ~payload -> Pbft.submit sys ~client ~payload);
    Engine.run ~until:4_000_000 engine;
    let s = Pbft.stats sys in
    let expected = requests / n_clients * n_clients in
    if s.Resoc_repl.Stats.completed < expected then
      failwith
        (Printf.sprintf "pbftbatch kernel: only %d/%d requests completed"
           s.Resoc_repl.Stats.completed expected);
    total := !total + s.Resoc_repl.Stats.completed
  done;
  !total

let paxos_kern ~requests ~repeat () =
  let total = ref 0 in
  for i = 0 to repeat - 1 do
    let engine = Engine.create ~seed:(Rng.derive 0xBA05L i) () in
    let config = { Paxos.default_config with f = 1; n_clients = 2 } in
    let n = Paxos.n_replicas config in
    let fabric = Transport.hub engine ~n:(n + 2) () in
    let sys = Paxos.start engine fabric config () in
    Generator.burst ~n_per_client:(requests / 2) ~n_clients:2 ~submit:(fun ~client ~payload ->
        Paxos.submit sys ~client ~payload);
    Engine.run ~until:2_000_000 engine;
    total := !total + Engine.events_processed engine
  done;
  !total

(* --- measurement --- *)

let measure ~id ~runs f =
  let best_wall = ref infinity in
  let best_alloc = ref infinity in
  let events = ref 0 in
  for _ = 1 to runs do
    Gc.full_major ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let n = f () in
    let t1 = Unix.gettimeofday () in
    let a1 = Gc.allocated_bytes () in
    if n <= 0 then failwith (Printf.sprintf "perf workload %s processed no events" id);
    events := n;
    let wall = t1 -. t0 in
    if wall < !best_wall then best_wall := wall;
    let per = (a1 -. a0) /. float_of_int n in
    if per < !best_alloc then best_alloc := per
  done;
  {
    id;
    runs;
    events = !events;
    best_wall_s = !best_wall;
    events_per_sec = float_of_int !events /. !best_wall;
    alloc_bytes_per_event = !best_alloc;
  }

(* --- emission --- *)

let float_repr v =
  if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then "null"
  else Printf.sprintf "%.6g" v

let emit_json ~dir ~mode results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"resoc-perf/1\",\"mode\":\"";
  Buffer.add_string buf mode;
  Buffer.add_string buf "\",\"workloads\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":\"%s\",\"runs\":%d,\"events\":%d,\"best_wall_s\":%s,\"events_per_sec\":%s,\"alloc_bytes_per_event\":%s}"
           r.id r.runs r.events (float_repr r.best_wall_s) (float_repr r.events_per_sec)
           (float_repr r.alloc_bytes_per_event)))
    results;
  Buffer.add_string buf "]}\n";
  let path = Filename.concat dir "BENCH_PERF.json" in
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  path

let run ~quick ~json_dir ~progress () =
  let runs = if quick then 2 else 3 in
  let note fmt =
    Printf.ksprintf (fun s -> if progress then Printf.eprintf "[perf] %s\n%!" s) fmt
  in
  Printf.printf "=== Simulator hot-path performance (%s mode, best of %d) ===\n"
    (if quick then "quick" else "full")
    runs;
  let workloads =
    if quick then
      [
        ("churn", churn ~events:400_000);
        ("e3mesh", e3_mesh ~requests:100 ~repeat:4);
        ("e2seu", e2_seu ~horizon:100_000 ~repeat:4);
        ("pbftkern", pbft_kern ~requests:100 ~repeat:6);
        ("paxoskern", paxos_kern ~requests:100 ~repeat:6);
        ("bftcast", bft_cast ~multicast:true ~rounds:200 ~repeat:2);
        ("bftcastuni", bft_cast ~multicast:false ~rounds:200 ~repeat:2);
        ("pbftbatch", pbft_batch ~batching:true ~requests:200 ~repeat:4);
        ("pbftbatchuni", pbft_batch ~batching:false ~requests:200 ~repeat:4);
      ]
    else
      [
        ("churn", churn ~events:2_000_000);
        ("e3mesh", e3_mesh ~requests:200 ~repeat:25);
        ("e2seu", e2_seu ~horizon:250_000 ~repeat:25);
        ("pbftkern", pbft_kern ~requests:200 ~repeat:30);
        ("paxoskern", paxos_kern ~requests:200 ~repeat:30);
        ("bftcast", bft_cast ~multicast:true ~rounds:600 ~repeat:4);
        ("bftcastuni", bft_cast ~multicast:false ~rounds:600 ~repeat:4);
        ("pbftbatch", pbft_batch ~batching:true ~requests:400 ~repeat:8);
        ("pbftbatchuni", pbft_batch ~batching:false ~requests:400 ~repeat:8);
      ]
  in
  let results =
    List.map
      (fun (id, f) ->
        note "running %s ..." id;
        let r = measure ~id ~runs f in
        note "%s: %.0f events/s" id r.events_per_sec;
        r)
      workloads
  in
  Printf.printf "%-8s %12s %12s %14s %12s\n" "workload" "events" "wall(s)" "events/sec"
    "allocB/ev";
  List.iter
    (fun r ->
      Printf.printf "%-8s %12d %12.4f %14.0f %12.1f\n" r.id r.events r.best_wall_s
        r.events_per_sec r.alloc_bytes_per_event)
    results;
  match json_dir with
  | None -> ()
  | Some dir ->
    let path = emit_json ~dir ~mode:(if quick then "quick" else "full") results in
    Printf.printf "wrote %s\n" path
