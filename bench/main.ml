(* Benchmark entry point: prints every experiment table (E1-E9, F1, A1-A8)
   and then runs one Bechamel micro-benchmark per experiment on a scaled-down
   version of its core simulation, so wall-clock regressions in the simulator
   itself are visible.

   Multi-seed experiments run through the resoc_campaign runner: [--seeds]
   sets the replicate count per configuration cell, [--jobs] the number of
   worker domains (default: RESOC_JOBS or the recommended domain count), and
   each campaign writes a machine-readable BENCH_<id>.json (plus CSV with
   [--csv]) into [--json-dir]. Aggregates are bit-identical across worker
   counts.

   [--perf] switches to the self-timing hot-path harness (bench/perf.ml):
   it measures events/sec and allocations/event on three canonical
   workloads and writes BENCH_PERF.json; [--quick] shrinks the workloads
   to a CI-friendly sub-10s run. bench/regress.exe compares two such
   files and fails on regression.

   Progress lines on stderr default to on only when stderr is a tty
   (override with --no-progress / --progress).

   Exit codes: 0 success, 2 bad usage (unknown experiment id, invalid
   flag value, unwritable --json-dir).

   [--metrics] enables the resoc_obs metrics registry and appends merged
   per-replicate "obs.*" scalars to each campaign's metrics; [--trace FILE]
   additionally records protocol/NoC trace events and writes a Chrome
   trace_event JSON (chrome://tracing, Perfetto). Tracing forces --jobs 1
   so every ring lives on the main domain. Positional arguments are
   experiment ids, equivalent to --only.

   [--check] turns on the resoc_check invariant checker and injection log;
   a replicate that trips an invariant is recorded as a failed trial and
   the run exits 1. [--shrink] additionally ddmin-minimizes every failing
   replicate's injection schedule into FAIL_<exp>_<seed>.json under
   --json-dir. [--replay FILE] re-executes the one replicate a FAIL file
   describes, under its suppression mask: exit 0 when the failure
   reproduces, 1 when it does not. Checking composes with --jobs: checker
   state is domain-local.

   Usage: main.exe [ids...] [--only <id>[,<id>...]] [--list] [--seeds N]
                   [--jobs N] [--json-dir DIR | --no-json] [--csv]
                   [--root-seed S] [--no-bechamel] [--no-progress]
                   [--progress] [--metrics] [--trace FILE]
                   [--check] [--shrink] [--replay FILE]
                   [--perf] [--quick] [--mcast | --mcast-fabric]
                   [--batch | --batch-armed]

   [--mcast] routes the E2/E3 protocol fan-outs through the fabric's
   multicast (NoC trees on the mesh, the counter-identical loop on the
   hub); [--mcast-fabric] arms the fabric multicast without letting any
   protocol use it, which must leave every campaign output byte-identical
   to a plain run — the determinism gate diffs exactly that.

   [--batch] enables request batching + agreement pipelining (window 50,
   max_batch 8, pipeline depth 4) in the E2/E3 protocol configs;
   [--batch-armed] threads a present-but-inactive batching config through
   the same paths, which must leave every campaign output byte-identical
   to a plain run — the determinism gate's second mode-off probe. *)

open Bechamel
open Toolkit
module Engine = Resoc_des.Engine
module Rng = Resoc_des.Rng
module Circuit = Resoc_hw.Circuit
module Redundancy = Resoc_hw.Redundancy
module Register = Resoc_hw.Register
module Complexity = Resoc_hw.Complexity
module Common_mode = Resoc_fault.Common_mode
module Transport = Resoc_repl.Transport
module Minbft = Resoc_repl.Minbft
module Pbft = Resoc_repl.Pbft
module Ecc = Resoc_hw.Ecc
module Group = Resoc_core.Group
module Generator = Resoc_workload.Generator

(* --- scaled-down kernels for bechamel (one per experiment table) --- *)

let bench_e1 () =
  let rng = Rng.create 1L in
  let c = Circuit.random_logic rng ~n_inputs:4 ~n_gates:100 in
  ignore (Redundancy.mc_circuit_correct rng c ~trials:50 ~p_gate:0.001)

let bench_e2 () =
  let w = Ecc.encode 0xDEADBEEFL in
  let w = Ecc.flip w 13 in
  ignore (Ecc.decode w)

let run_small_group kind =
  let engine = Engine.create () in
  let spec = { Group.default_spec with kind; n_clients = 1 } in
  let group = Group.build engine (Group.Hub { latency = 5 }) spec in
  Generator.burst ~n_per_client:3 ~n_clients:1 ~submit:group.Group.submit;
  Engine.run ~until:100_000 engine

let bench_e3 () = run_small_group `Minbft

let bench_e4 () = run_small_group `Primary_backup

let bench_e5 () =
  let rng = Rng.create 3L in
  let pool = Common_mode.create ~n_variants:4 ~shared_prob:0.1 in
  ignore (Common_mode.p_group_compromise pool rng ~assignment:[| 0; 1; 2; 3 |] ~f:1 ~trials:500)

let bench_e6 () =
  let config =
    {
      Resoc_core.Resilient_system.default_config with
      group = { Group.default_spec with n_clients = 1 };
    }
  in
  let sys = Resoc_core.Resilient_system.create config in
  ignore (Resoc_core.Resilient_system.run sys ~horizon:30_000 ~workload_period:5_000)

let bench_e7 () =
  let engine = Engine.create () in
  let threat = Resoc_resilience.Threat.create engine ~half_life:1_000 in
  Engine.every engine ~period:100 (fun () -> Resoc_resilience.Threat.report threat ());
  Engine.run ~until:10_000 engine

let bench_e8 () =
  let engine = Engine.create () in
  let grid = Resoc_fabric.Grid.create ~width:8 ~height:8 in
  let icap = Resoc_fabric.Icap.create engine grid () in
  Resoc_fabric.Icap.grant icap ~principal:1
    ~region:(Resoc_fabric.Region.make ~x:0 ~y:0 ~w:8 ~h:8);
  Resoc_fabric.Icap.configure icap ~principal:1
    ~region:(Resoc_fabric.Region.make ~x:0 ~y:0 ~w:2 ~h:2)
    ~bitstream:(Resoc_fabric.Bitstream.make ~variant:0 ~w:2 ~h:2)
    (fun _ -> ());
  Engine.run engine

let bench_e9 () = ignore (Complexity.crossover Complexity.default ~max_complexity:200)

let bench_f1 () =
  let engine = Engine.create () in
  let config = { Pbft.default_config with n_clients = 1 } in
  let fabric = Transport.hub engine ~n:5 () in
  let sys = Pbft.start engine fabric config () in
  Pbft.submit sys ~client:0 ~payload:1L;
  Engine.run ~until:50_000 engine

let bechamel_tests =
  [
    Test.make ~name:"e1-gate-mc" (Staged.stage bench_e1);
    Test.make ~name:"e2-secded-roundtrip" (Staged.stage bench_e2);
    Test.make ~name:"e3-minbft-burst" (Staged.stage bench_e3);
    Test.make ~name:"e4-primary-backup-burst" (Staged.stage bench_e4);
    Test.make ~name:"e5-common-mode-mc" (Staged.stage bench_e5);
    Test.make ~name:"e6-resilient-system" (Staged.stage bench_e6);
    Test.make ~name:"e7-threat-detector" (Staged.stage bench_e7);
    Test.make ~name:"e8-icap-configure" (Staged.stage bench_e8);
    Test.make ~name:"e9-crossover-search" (Staged.stage bench_e9);
    Test.make ~name:"f1-pbft-roundtrip" (Staged.stage bench_f1);
  ]

let run_bechamel () =
  Printf.printf "\n=== Bechamel micro-benchmarks (simulator kernels, ns/run) ===\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) ~stabilize:false ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"resoc" bechamel_tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "%-28s %12.0f ns/run\n" name est
      | Some [] | None -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare rows)

let () =
  let only = ref [] in
  let list_only = ref false in
  let no_bechamel = ref false in
  let seeds = ref 16 in
  let jobs = ref (Resoc_campaign.Pool.default_jobs ()) in
  let json_dir = ref "." in
  let no_json = ref false in
  let csv = ref false in
  let root_seed = ref 0x5EEDL in
  (* Progress chatter defaults to on only for interactive runs; CI logs
     stay clean without needing the flag. *)
  let progress = ref (Unix.isatty Unix.stderr) in
  let perf = ref false in
  let quick = ref false in
  let metrics = ref false in
  let trace_file = ref "" in
  let check = ref false in
  let shrink = ref false in
  let replay_file = ref "" in
  let mcast = ref Experiments.Mcast_off in
  let batch = ref Experiments.Batch_off in
  let spec =
    [
      ( "--only",
        Arg.String
          (fun s -> only := !only @ String.split_on_char ',' (String.trim s)),
        "IDS run only these experiments (comma-separated ids, see --list)" );
      ("--list", Arg.Set list_only, " list experiment ids and exit");
      ( "--seeds",
        Arg.Set_int seeds,
        "N replicates per campaign cell (default 16)" );
      ( "--jobs",
        Arg.Set_int jobs,
        "N worker domains for campaigns (default: RESOC_JOBS or recommended \
         domain count)" );
      ( "--json-dir",
        Arg.Set_string json_dir,
        "DIR directory for BENCH_<id>.json files (default .)" );
      ("--no-json", Arg.Set no_json, " disable BENCH_<id>.json emission");
      ("--csv", Arg.Set csv, " also write BENCH_<id>.csv per campaign");
      ( "--root-seed",
        Arg.String (fun s -> root_seed := Int64.of_string s),
        "S root seed of the campaign seed tree (default 0x5EED)" );
      ("--no-bechamel", Arg.Set no_bechamel, " skip the Bechamel micro-benchmarks");
      ( "--no-progress",
        Arg.Clear progress,
        " disable stderr progress/timing lines (default when stderr is not a tty)" );
      ("--progress", Arg.Set progress, " force stderr progress/timing lines on");
      ( "--metrics",
        Arg.Set metrics,
        " enable the obs metrics registry; campaigns append obs.* scalars" );
      ( "--trace",
        Arg.Set_string trace_file,
        "FILE write a Chrome trace_event JSON of the run (forces --jobs 1)" );
      ( "--check",
        Arg.Set check,
        " enable the resoc_check invariant checker; exit 1 on any failed replicate" );
      ( "--shrink",
        Arg.Set shrink,
        " with --check: minimize failing injection schedules to FAIL_*.json (implies --check)" );
      ( "--replay",
        Arg.Set_string replay_file,
        "FILE re-execute the failing replicate recorded in a FAIL_*.json (implies --check)" );
      ("--perf", Arg.Set perf, " run the hot-path perf harness instead of the experiments");
      ("--quick", Arg.Set quick, " with --perf: sub-10s workloads for CI");
      ( "--mcast",
        Arg.Unit (fun () -> mcast := Experiments.Mcast_full),
        " route E2/E3 protocol fan-outs through NoC tree / hub multicast" );
      ( "--mcast-fabric",
        Arg.Unit (fun () -> mcast := Experiments.Mcast_fabric),
        " arm the fabric multicast but leave protocols on unicast; outputs \
         must stay byte-identical to a plain run (determinism-gate probe)" );
      ( "--batch",
        Arg.Unit (fun () -> batch := Experiments.Batch_full),
        " enable request batching + agreement pipelining in the E2/E3 \
         protocol configs" );
      ( "--batch-armed",
        Arg.Unit (fun () -> batch := Experiments.Batch_armed),
        " thread a present-but-inactive batching config; outputs must stay \
         byte-identical to a plain run (determinism-gate probe)" );
    ]
  in
  let usage = "main.exe [ids...] [options]\n\nOptions:" in
  Arg.parse (Arg.align spec)
    (fun anon -> only := !only @ String.split_on_char ',' (String.trim anon))
    usage;
  if !list_only then begin
    List.iter (fun (id, title, _) -> Printf.printf "%-4s %s\n" id title) Experiments.all;
    exit 0
  end;
  let replay = ref None in
  if !replay_file <> "" then begin
    (match Resoc_check.Replay.read !replay_file with
    | rt -> replay := Some rt
    | exception (Sys_error msg | Failure msg) ->
      Printf.eprintf "--replay %s: %s\n" !replay_file msg;
      exit 2);
    check := true;
    (* A FAIL record pins one replicate of one campaign; run only that. *)
    only := [ (Option.get !replay).Resoc_check.Replay.experiment ]
  end;
  if !shrink then check := true;
  let known = List.map (fun (id, _, _) -> id) Experiments.all in
  let unknown = List.filter (fun id -> not (List.mem id known)) !only in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment id(s): %s\nvalid ids: %s\n"
      (String.concat ", " unknown) (String.concat " " known);
    exit 2
  end;
  if !seeds < 1 then begin
    Printf.eprintf "--seeds must be >= 1\n";
    exit 2
  end;
  if !jobs < 1 then begin
    Printf.eprintf "--jobs must be >= 1\n";
    exit 2
  end;
  if !metrics then Resoc_obs.Obs.enable_metrics ();
  if !trace_file <> "" then begin
    (* Rings are domain-local; export from the main domain only. *)
    Resoc_obs.Obs.enable_tracing ();
    if !jobs <> 1 then Printf.eprintf "--trace: forcing --jobs 1 (trace rings are domain-local)\n%!";
    jobs := 1
  end;
  if !check then begin
    Resoc_check.Check.enable ();
    Resoc_check.Inject.record ()
  end;
  if not !no_json then begin
    let rec mkdir_p dir =
      if not (Sys.file_exists dir) then begin
        mkdir_p (Filename.dirname dir);
        try Sys.mkdir dir 0o755 with Sys_error _ -> ()
      end
    in
    mkdir_p !json_dir;
    if not (try Sys.is_directory !json_dir with Sys_error _ -> false) then begin
      Printf.eprintf "--json-dir %s: cannot create directory\n" !json_dir;
      exit 2
    end
  end;
  if !perf then begin
    Perf.run ~quick:!quick ~json_dir:(if !no_json then None else Some !json_dir)
      ~progress:!progress ();
    exit 0
  end;
  Experiments.run_config :=
    {
      Experiments.replicates = !seeds;
      jobs = !jobs;
      json_dir = (if !no_json then None else Some !json_dir);
      csv = !csv;
      root_seed = !root_seed;
      progress = !progress;
      check = !check;
      shrink = !shrink;
      mcast = !mcast;
      batch = !batch;
    };
  Experiments.replay_target := !replay;
  Printf.printf "resoc experiment suite — reproducing the quantitative claims of\n";
  Printf.printf "\"The Path to Fault- and Intrusion-Resilient Manycore Systems on a Chip\" (DSN'23)\n";
  Printf.printf "campaigns: %d replicates/cell, %d worker domain(s), root seed %Ld\n" !seeds
    !jobs !root_seed;
  List.iter
    (fun (id, _title, run) -> if !only = [] || List.mem id !only then run ())
    Experiments.all;
  if !trace_file <> "" then begin
    Resoc_obs.Obs.write_trace !trace_file;
    Printf.eprintf "wrote Chrome trace to %s\n%!" !trace_file
  end;
  if !check && !Experiments.total_failures > 0 then begin
    Printf.eprintf "resoc_check: %d replicate(s) failed invariant checking\n"
      !Experiments.total_failures;
    exit 1
  end;
  if not !no_bechamel then run_bechamel ()
